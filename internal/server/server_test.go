package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"normalize"
)

// addressCSV is the paper's running example (Figure 2): Postcode
// determines City and Mayor, so BCNF splits the relation in two.
const addressCSV = `First,Last,Postcode,City,Mayor
Thomas,Miller,14482,Potsdam,Jakobs
Sarah,Miller,14482,Potsdam,Jakobs
Peter,Smith,60329,Frankfurt,Feldmann
Jasmine,Cone,01069,Dresden,Orosz
Mike,Cone,14482,Potsdam,Jakobs
Thomas,Moore,60329,Frankfurt,Feldmann
`

// testServer builds a server with a unique expvar name per test (the
// registry is process-global and rejects duplicates).
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.MetricsName == "" {
		cfg.MetricsName = "test_" + strings.ReplaceAll(t.Name(), "/", "_")
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func submit(t *testing.T, h http.Handler, body string) jobStatus {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body)))
	if rr.Code != http.StatusAccepted && rr.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body.String())
	}
	var st jobStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("submit response: %v: %s", err, rr.Body.String())
	}
	return st
}

func getStatus(t *testing.T, h http.Handler, id string) jobStatus {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+id, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %s: %d %s", id, rr.Code, rr.Body.String())
	}
	var st jobStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, h http.Handler, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, h, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobStatus{}
}

func csvBody(csv string, opts string) string {
	b, _ := json.Marshal(csv)
	return fmt.Sprintf(`{"name":"address","csv":%s,"options":{%s}}`, b, opts)
}

func TestSubmitRunsToDone(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	if st.State != StateQueued {
		t.Fatalf("state after submit = %s, want queued", st.State)
	}
	st = waitTerminal(t, h, st.ID)
	if st.State != StateDone {
		t.Fatalf("terminal state = %s (%s), want done", st.State, st.Error)
	}
	if st.Tables != 2 {
		t.Errorf("tables = %d, want 2 (Figure 2 split)", st.Tables)
	}
	if st.Started == nil || st.Finished == nil {
		t.Error("timestamps missing on terminal job")
	}
}

func TestResultPayloadAndSQLFormat(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	waitTerminal(t, h, st.ID)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result?include=rows", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("result: %d %s", rr.Code, rr.Body.String())
	}
	var payload resultPayload
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(payload.DDL, "CREATE TABLE") {
		t.Errorf("DDL missing CREATE TABLE: %q", payload.DDL)
	}
	if len(payload.Rows) != 2 {
		t.Errorf("rows for %d tables, want 2", len(payload.Rows))
	}
	var schema struct {
		Tables []struct {
			Name string `json:"name"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(payload.Schema, &schema); err != nil {
		t.Fatal(err)
	}
	if len(schema.Tables) != 2 {
		t.Errorf("schema tables = %d, want 2", len(schema.Tables))
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result?format=sql", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "CREATE TABLE") {
		t.Errorf("sql format: %d %q", rr.Code, rr.Body.String())
	}
}

func TestResultBeforeFinishConflicts(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	// A generator job large enough to still be running right after
	// submission (and cancelled in cleanup via server shutdown).
	st := submit(t, h, `{"dataset":{"generator":"flight","seed":1},"options":{"max_lhs":2}}`)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result", nil))
	if rr.Code != http.StatusConflict {
		t.Fatalf("result on unfinished job: %d, want 409", rr.Code)
	}
	// Cancel so cleanup doesn't wait for the full run.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("DELETE", "/v1/jobs/"+st.ID, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("cancel: %d", rr.Code)
	}
	fin := waitTerminal(t, h, st.ID)
	if fin.State != StateCancelled {
		t.Errorf("state after cancel = %s, want cancelled", fin.State)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 8})
	h := s.Handler()
	// Occupy the single worker...
	blocker := submit(t, h, `{"dataset":{"generator":"plista","seed":1},"options":{"max_lhs":2}}`)
	// ...then queue a second job and cancel it before it can start.
	queued := submit(t, h, csvBody(addressCSV, ""))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("DELETE", "/v1/jobs/"+queued.ID, nil))
	var st jobStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job state = %s", st.State)
	}
	if st.Tables != 0 {
		t.Errorf("cancelled queued job has %d tables", st.Tables)
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("DELETE", "/v1/jobs/"+blocker.ID, nil))
	waitTerminal(t, h, blocker.ID)
}

func TestQueueFullRejectsWith503(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1})
	h := s.Handler()
	// One running + one queued fills the system; the next must bounce.
	j1 := submit(t, h, `{"dataset":{"generator":"plista","seed":1},"options":{"max_lhs":2}}`)
	waitRunning(t, h, j1.ID)
	submit(t, h, `{"dataset":{"generator":"plista","seed":2},"options":{"max_lhs":2}}`)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(`{"dataset":{"generator":"plista","seed":3},"options":{"max_lhs":2}}`)))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("submit to full queue = %d, want 503", rr.Code)
	}
	if got := rr.Header().Get("Retry-After"); got == "" {
		t.Error("503 without Retry-After")
	}
	// Unblock cleanup.
	for _, j := range s.m.Jobs() {
		j.Cancel()
	}
}

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, h http.Handler, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, h, id)
		if st.State != StateQueued {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

func TestBadRequests(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	cases := []struct {
		name, body string
		code       int
	}{
		{"neither source", `{"options":{}}`, http.StatusBadRequest},
		{"both sources", `{"csv":"a\n1","dataset":{"generator":"tpch"}}`, http.StatusBadRequest},
		{"bad mode", csvBody("a\n1", `"mode":"5nf"`), http.StatusBadRequest},
		{"bad closure", csvBody("a\n1", `"closure":"quantum"`), http.StatusBadRequest},
		{"bad generator", `{"dataset":{"generator":"tpcds"}}`, http.StatusBadRequest},
		{"negative option", csvBody("a\n1", `"max_lhs":-1`), http.StatusBadRequest},
		{"unknown field", `{"csv":"a\n1","bogus":true}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(c.body)))
		if rr.Code != c.code {
			t.Errorf("%s: code %d, want %d (%s)", c.name, rr.Code, c.code, rr.Body.String())
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/missing", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", rr.Code)
	}
}

func TestBodySizeCap(t *testing.T) {
	s := testServer(t, Config{Workers: 1, MaxBodyBytes: 256})
	h := s.Handler()
	big := csvBody("a,b\n"+strings.Repeat("x,y\n", 200), "")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(big)))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", rr.Code)
	}
}

func TestCacheServesIdenticalResubmission(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	body := csvBody(addressCSV, `"max_lhs":3`)
	first := submit(t, h, body)
	fin := waitTerminal(t, h, first.ID)
	if fin.State != StateDone {
		t.Fatalf("first run: %s", fin.State)
	}

	second := submit(t, h, body)
	if !second.Cached || second.State != StateDone {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if second.ID == first.ID {
		t.Error("cache hit must still mint a fresh job ID")
	}

	// Different options miss the cache.
	third := submit(t, h, csvBody(addressCSV, `"max_lhs":2`))
	if third.Cached {
		t.Error("different options must not hit the cache")
	}
	waitTerminal(t, h, third.ID)

	// SSE on a cached job replays the terminal event and closes.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+second.ID+"/events", nil))
	if !strings.Contains(rr.Body.String(), `"cached":true`) {
		t.Errorf("cached job SSE stream missing cached state event: %q", rr.Body.String())
	}
}

func TestLenientCSVReportsSkippedRows(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	bad := "a,b\n1,2\nragged\n3,4\n"
	body, _ := json.Marshal(bad)
	st := submit(t, h, fmt.Sprintf(`{"csv":%s,"lenient":true,"options":{}}`, body))
	fin := waitTerminal(t, h, st.ID)
	if fin.State != StateDone {
		t.Fatalf("lenient job: %s (%s)", fin.State, fin.Error)
	}
	if fin.SkippedRows != 1 {
		t.Errorf("skipped_rows = %d, want 1", fin.SkippedRows)
	}

	// The same CSV without lenient fails.
	st = submit(t, h, fmt.Sprintf(`{"csv":%s,"options":{}}`, body))
	fin = waitTerminal(t, h, st.ID)
	if fin.State != StateFailed {
		t.Errorf("strict job on ragged CSV: %s, want failed", fin.State)
	}
}

func TestTimeoutYieldsPartial(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	// A 1ms budget cannot finish a 109-attribute discovery.
	st := submit(t, h, `{"dataset":{"generator":"flight","seed":1},"options":{"max_lhs":2,"timeout_ms":1}}`)
	fin := waitTerminal(t, h, st.ID)
	if fin.State != StatePartial {
		t.Fatalf("state = %s (%s), want partial", fin.State, fin.Error)
	}
	if len(fin.Degradations) == 0 {
		t.Error("partial job carries no degradation report")
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("partial result: %d", rr.Code)
	}
	var payload resultPayload
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.State != StatePartial || len(payload.Schema) == 0 {
		t.Errorf("partial payload = state %s, schema %d bytes", payload.State, len(payload.Schema))
	}
	if payload.Error == "" {
		t.Error("partial payload missing the PartialError description")
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	for _, path := range []string{"/healthz", "/readyz"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Errorf("%s = %d", path, rr.Code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(csvBody(addressCSV, ""))))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", rr.Code)
	}
}

func TestTelemetryScrape(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	waitTerminal(t, h, st.ID)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/telemetry", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("telemetry: %d", rr.Code)
	}
	var stages []map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &stages); err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Error("telemetry empty after completed run")
	}
}

// TestIngestTelemetryExposed pins the ingest stage's observability: the
// streaming CSV load reports its span and counters like any pipeline
// stage, so they reach both the per-job telemetry scrape and the
// process-wide /debug/vars aggregates.
func TestIngestTelemetryExposed(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	waitTerminal(t, h, st.ID)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/telemetry", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("telemetry: %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), `"ingest"`) {
		t.Errorf("job telemetry missing ingest stage: %s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("debug/vars: %d", rr.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	var byStage map[string]struct {
		Spans    int              `json:"spans"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(vars[s.cfg.MetricsName], &byStage); err != nil {
		t.Fatal(err)
	}
	ing, ok := byStage["ingest"]
	if !ok {
		t.Fatalf("debug/vars missing ingest stage: %s", vars[s.cfg.MetricsName])
	}
	if ing.Spans == 0 || ing.Counters["ingest_rows"] == 0 || ing.Counters["ingest_bytes"] == 0 {
		t.Errorf("ingest aggregates incomplete: %+v", ing)
	}

	// The SSE stream replays a finished job's history; the ingest span
	// must be in it like any pipeline stage's.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("events: %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), `"ingest"`) {
		t.Errorf("SSE replay missing ingest events: %s", rr.Body.String())
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	h := s.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler = %d, want 500", rr.Code)
	}
}

func TestBusReplayAndLiveDelivery(t *testing.T) {
	b := newBus()
	b.publish("state", stateEventData{ID: "x", State: StateQueued})
	sub := b.subscribe()
	defer sub.cancel()
	replay, done := sub.poll()
	if len(replay) != 1 || replay[0].Type != "state" || done {
		t.Fatalf("replay = %+v done=%v", replay, done)
	}
	b.publish("stage", stageEventData{Stage: "fd-discovery", Event: "start"})
	select {
	case <-sub.wake:
	case <-time.After(time.Second):
		t.Fatal("wake signal not delivered")
	}
	live, done := sub.poll()
	if len(live) != 1 || live[0].Type != "stage" || live[0].ID != 2 || done {
		t.Fatalf("live events = %+v done=%v", live, done)
	}
	b.close()
	if _, ok := <-sub.wake; ok {
		t.Error("wake channel not closed on bus close")
	}
	if more, done := sub.poll(); len(more) != 0 || !done {
		t.Errorf("post-close poll = %+v done=%v, want none/true", more, done)
	}
	// Late subscriber after close still sees the full history.
	sub2 := b.subscribe()
	defer sub2.cancel()
	replay2, done2 := sub2.poll()
	if len(replay2) != 2 || !done2 {
		t.Errorf("post-close replay = %d events done=%v, want 2/true", len(replay2), done2)
	}
	if _, ok := <-sub2.wake; ok {
		t.Error("post-close wake channel not closed")
	}
}

func TestBusSlowSubscriberStillSeesTerminalEvent(t *testing.T) {
	b := newBus()
	sub := b.subscribe() // registered but never polled during the burst
	defer sub.cancel()
	for i := 0; i < 50; i++ {
		b.publish(eventProgress, progressEventData{})
	}
	b.publish(eventState, stateEventData{ID: "x", State: StateDone})
	b.close()
	events, done := sub.poll()
	if !done {
		t.Fatal("poll did not report stream complete")
	}
	if len(events) != 51 {
		t.Errorf("got %d events, want 51", len(events))
	}
	last := events[len(events)-1]
	if last.Type != eventState {
		t.Errorf("last event = %s, want terminal %s", last.Type, eventState)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0)
	r1, r2, r3 := &normalize.Result{}, &normalize.Result{}, &normalize.Result{}
	c.put("a", r1)
	c.put("b", r2)
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r3)
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Error("a lost")
	}
	if got, ok := c.get("c"); !ok || got != r3 {
		t.Error("c lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	// Disabled cache accepts and returns nothing.
	off := newResultCache(-1, 0)
	off.put("a", r1)
	if _, ok := off.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	mk := func(opts normalize.Options) *jobSpec {
		return &jobSpec{csv: []byte(addressCSV), name: "address", opts: opts}
	}
	base := cacheKey(mk(normalize.Options{MaxLhs: 3}))
	if base != cacheKey(mk(normalize.Options{MaxLhs: 3})) {
		t.Error("identical specs hash differently")
	}
	if base == cacheKey(mk(normalize.Options{MaxLhs: 2})) {
		t.Error("different options hash identically")
	}
	gen := cacheKey(&jobSpec{gen: "tpch", scale: 0.001, seed: 1})
	if gen == cacheKey(&jobSpec{gen: "tpch", scale: 0.001, seed: 2}) {
		t.Error("different seeds hash identically")
	}
	if base == gen {
		t.Error("csv and generator specs collide")
	}
}

// TestSSEHandlerStreamsToCompletion drives the SSE handler against a
// short job using a pipe-backed recorder, asserting the stream carries
// stage events and ends with the terminal state.
func TestSSEHandlerStreamsToCompletion(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))

	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil))
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate")
	}
	out := rr.Body.String()
	if !strings.Contains(out, "event: stage") {
		t.Errorf("stream missing stage events: %q", out)
	}
	if !strings.Contains(out, `"state":"done"`) {
		t.Errorf("stream missing terminal state: %q", out)
	}
	// The terminal event must be last.
	events := bytes.Split(bytes.TrimSpace(rr.Body.Bytes()), []byte("\n\n"))
	last := string(events[len(events)-1])
	if !strings.Contains(last, `"state":"done"`) {
		t.Errorf("last event is not terminal: %q", last)
	}
}

// TestJobWorkersDefault pins the server-wide validation-worker default:
// submissions that omit options.workers inherit Config.JobWorkers,
// explicit values are never overridden, and the zero config keeps the
// pipeline default (workers = 0, all CPUs).
func TestJobWorkersDefault(t *testing.T) {
	s := testServer(t, Config{Workers: 1, JobWorkers: 3})
	h := s.Handler()

	st := submit(t, h, csvBody(addressCSV, ""))
	job, ok := s.m.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not found", st.ID)
	}
	if got := job.spec.opts.Workers; got != 3 {
		t.Errorf("defaulted job: workers = %d, want 3", got)
	}

	st = submit(t, h, csvBody(addressCSV, `"workers":2`))
	job, ok = s.m.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not found", st.ID)
	}
	if got := job.spec.opts.Workers; got != 2 {
		t.Errorf("explicit job: workers = %d, want 2", got)
	}

	s2 := testServer(t, Config{Workers: 1, MetricsName: "test_TestJobWorkersDefault_zero"})
	st = submit(t, s2.Handler(), csvBody(addressCSV, ""))
	job, ok = s2.m.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not found", st.ID)
	}
	if got := job.spec.opts.Workers; got != 0 {
		t.Errorf("zero-config job: workers = %d, want 0", got)
	}
}
