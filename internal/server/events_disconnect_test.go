package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestIsClientDisconnect(t *testing.T) {
	benign := []error{
		syscall.EPIPE,
		syscall.ECONNRESET,
		net.ErrClosed,
		context.Canceled,
		fmt.Errorf("write tcp 1.2.3.4:80: %w", syscall.EPIPE),
		errors.New("write: broken pipe"),
		errors.New("read: connection reset by peer"),
		errors.New("http2: client disconnected"),
	}
	for _, err := range benign {
		if !isClientDisconnect(err) {
			t.Errorf("%v not classified as client disconnect", err)
		}
	}
	faults := []error{
		nil,
		errors.New("no space left on device"),
		errors.New("short write"),
	}
	for _, err := range faults {
		if isClientDisconnect(err) {
			t.Errorf("%v misclassified as client disconnect", err)
		}
	}
}

// brokenPipeWriter fails every write the way a closed client socket
// does, while still satisfying the SSE handler's Flusher requirement.
type brokenPipeWriter struct {
	*httptest.ResponseRecorder
}

func (w *brokenPipeWriter) Write([]byte) (int, error) {
	return 0, fmt.Errorf("write tcp 127.0.0.1:80->127.0.0.1:90: write: %w", syscall.EPIPE)
}
func (w *brokenPipeWriter) Flush() {}

// TestSSEClientDisconnectLogsBenign pins the write-path classification:
// a consumer dropping its event stream produces a "client disconnected"
// line, never an error-shaped "write failed" one.
func TestSSEClientDisconnectLogsBenign(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := testServer(t, Config{Workers: 1, Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	waitTerminal(t, h, st.ID)

	// The finished job's bus replays its history; the very first event
	// write hits the "closed socket" and must end the stream benignly.
	rr := &brokenPipeWriter{ResponseRecorder: httptest.NewRecorder()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil))
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("SSE handler did not return on dead client")
	}

	mu.Lock()
	defer mu.Unlock()
	var sawBenign bool
	for _, l := range lines {
		if strings.Contains(l, "write failed") {
			t.Errorf("client disconnect logged as error: %q", l)
		}
		if strings.Contains(l, "client disconnected") {
			sawBenign = true
		}
	}
	if !sawBenign {
		t.Errorf("no benign disconnect line logged; got %q", lines)
	}
}

// TestReplicationEndpointsOnPersistentServer checks the leader wiring:
// a server with a data dir serves the replication endpoints, a purely
// in-memory one does not.
func TestReplicationEndpointsOnPersistentServer(t *testing.T) {
	s := testServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	waitTerminal(t, h, st.ID)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/replication/status", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"epoch"`) {
		t.Fatalf("leader status: %d %s", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/replication/stream?epoch=bogus&from=0", nil))
	if rr.Code != http.StatusConflict {
		t.Errorf("stale stream position: %d, want 409", rr.Code)
	}

	mem := testServer(t, Config{Workers: 1, MetricsName: "test_" + t.Name() + "_mem"})
	rr = httptest.NewRecorder()
	mem.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/replication/status", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("replication on memory-only server: %d, want 404", rr.Code)
	}
}
