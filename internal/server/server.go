// Package server is the long-lived normalization service behind the
// normalized binary: it accepts CSV or dataset-generator normalization
// jobs over HTTP, runs them on a bounded worker pool with a FIFO
// queue, streams per-stage progress as Server-Sent Events, caches
// results by content hash, and exposes health and metrics endpoints.
// The paper (§7) frames Normalize as an interactive, incremental tool;
// a resumable job API over a persistent process is the operational
// form of that framing.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (CSV or generator + options)
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (queued: immediate; running: ~100ms)
//	GET    /v1/jobs/{id}/events live progress as SSE (replays history)
//	GET    /v1/jobs/{id}/result result as JSON (?format=sql for DDL,
//	                            ?include=rows to embed table instances)
//	GET    /v1/jobs/{id}/telemetry  per-stage telemetry, also mid-run
//	GET    /healthz             liveness (always 200 while serving)
//	GET    /readyz              readiness (503 once draining)
//	GET    /debug/vars          expvar, including pipeline stage metrics
//
// Persistent servers (DataDir set) additionally serve the replication
// leader endpoints — /v1/replication/{stream,snapshot,status} — so warm
// standbys can mirror the write-ahead log; see internal/replicate.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"normalize"
	"normalize/internal/export"
	"normalize/internal/guard"
	"normalize/internal/jobstore"
	"normalize/internal/replicate"
)

// Config bounds the server's resources; zero values select defaults.
type Config struct {
	// Workers is the size of the normalization worker pool (default 2).
	Workers int
	// JobWorkers is the default per-job validation worker count applied
	// to submissions that omit options.workers; 0 keeps the pipeline
	// default (all CPUs). With several concurrent jobs, capping each
	// job's work-stealing pool avoids oversubscribing the host. The
	// resolved value is persisted with the job, so crash replays run
	// with the workers the submission actually used. Requests that set
	// options.workers explicitly are never overridden.
	JobWorkers int
	// QueueDepth bounds the FIFO job queue; a full queue rejects
	// submissions with 503 (default 32).
	QueueDepth int
	// MaxBodyBytes caps the request body — and therefore the uploaded
	// CSV size (default 8 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the content-hash result cache; 0 uses the
	// default (64), negative disables caching.
	CacheEntries int
	// CacheBytes bounds the result cache by the summed encoded size of
	// its entries — delta-derived (lineage child) results are charged
	// like any other; 0 uses the default (64 MiB), negative disables
	// the byte budget (count-only bounding).
	CacheBytes int64
	// MetricsName registers the aggregated per-stage pipeline metrics
	// under this expvar name (default "normalize_stages"; "-" skips
	// registration, for processes embedding several servers).
	MetricsName string
	// SpillDir is the directory for transient spill files (out-of-core
	// CSV ingest and the budget-governed PLI store). Defaults to
	// DataDir/spill when DataDir is set, else the OS temp dir. A
	// server-owned spill dir is swept of leftover spill files at
	// startup and again at drain, so a crash can never leak them
	// across process lifetimes. Requests cannot choose the directory:
	// the server overrides any client-supplied value.
	SpillDir string
	// DataDir, when non-empty, makes job state crash-safe: submissions,
	// lifecycle transitions, and terminal results are appended to a
	// write-ahead log in this directory, and a restart replays it —
	// re-enqueueing whatever was queued or running, rehydrating the
	// result cache, and keeping terminal jobs queryable. Empty keeps
	// the server fully in-memory.
	DataDir string
	// Fsync forces an fsync after every log append. Without it, job
	// state survives process death (SIGKILL included) but not power
	// loss or kernel crash.
	Fsync bool
	// Logf receives one line per request and per recovered panic; nil
	// disables request logging.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MetricsName == "" {
		c.MetricsName = "normalize_stages"
	}
	if c.SpillDir == "" && c.DataDir != "" {
		c.SpillDir = filepath.Join(c.DataDir, "spill")
	}
}

// Server is the normalization service: an HTTP handler plus the worker
// pool behind it. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg      Config
	m        *manager
	metrics  *normalize.MetricsPublisher
	mux      *http.ServeMux
	store    *jobstore.Store
	recovery *jobstore.RecoveryReport
}

// New builds a server and starts its worker pool. The per-stage
// metrics aggregate across all jobs and are registered in expvar under
// cfg.MetricsName. With cfg.DataDir set, New first replays the
// persisted job state from disk; jobs that were queued or running when
// the previous process died re-enter the queue before any new
// submission is accepted.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: spill dir: %w", err)
		}
		// The previous process may have died mid-job; its transient
		// spill files are garbage now.
		sweepSpill(cfg.SpillDir, cfg.Logf)
	}
	s := &Server{cfg: cfg, metrics: &normalize.MetricsPublisher{}}
	if cfg.MetricsName != "-" {
		if err := s.metrics.Publish(cfg.MetricsName); err != nil {
			return nil, err
		}
	}
	var p *persister
	if cfg.DataDir != "" {
		store, report, err := jobstore.Open(cfg.DataDir, jobstore.Options{Fsync: cfg.Fsync})
		if err != nil {
			return nil, fmt.Errorf("server: open job store: %w", err)
		}
		s.store, s.recovery = store, report
		p = &persister{store: store, logf: cfg.Logf}
	}
	s.m = newManager(cfg.Workers, cfg.QueueDepth, cfg.CacheEntries, cfg.CacheBytes, s.metrics, p)
	s.m.spillDir = cfg.SpillDir

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.m.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.store != nil {
		// A persistent server is automatically a replication leader:
		// warm standbys stream its WAL through these endpoints.
		leader := replicate.NewLeader(s.store, cfg.Logf)
		leader.Register(mux)
		if cfg.MetricsName != "-" {
			name := cfg.MetricsName + "_replication"
			if expvar.Get(name) == nil {
				expvar.Publish(name, leader.Vars())
			}
		}
	}
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP surface wrapped in request logging and
// panic recovery.
func (s *Server) Handler() http.Handler {
	return s.middleware(s.mux)
}

// Shutdown drains the server: readiness flips to 503, new submissions
// are rejected, in-flight jobs get until ctx ends to finish, then the
// stragglers are cancelled (salvaging partial results), the worker
// pool exits, and the job store is flushed and closed.
func (s *Server) Shutdown(ctx context.Context) {
	s.m.Shutdown(ctx)
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			s.logf("server: close job store: %v", err)
		}
	}
	// The pool has exited: any spill file still present in a
	// server-owned dir was leaked by a cancelled or crashed job.
	if s.cfg.SpillDir != "" {
		sweepSpill(s.cfg.SpillDir, s.cfg.Logf)
	}
}

// sweepSpill removes leftover transient spill files — out-of-core
// ingest blocks and compressed PLI segments — from a server-owned
// spill directory. Both producers create files via os.CreateTemp and
// remove them on every orderly exit path, so anything matching here is
// an orphan from a crash or kill. Never called on the shared OS temp
// dir (other processes' files live there).
func sweepSpill(dir string, logf func(string, ...any)) {
	for _, pattern := range []string{"ingest-spill-*.bin", "pli-spill-*.bin"} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			continue
		}
		for _, m := range matches {
			if err := os.Remove(m); err == nil && logf != nil {
				logf("server: removed leaked spill file %s", m)
			}
		}
	}
}

// RecoveryReport returns what New recovered from cfg.DataDir, or nil
// when the server runs without persistence.
func (s *Server) RecoveryReport() *jobstore.RecoveryReport {
	return s.recovery
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// statusWriter captures the response code for the request log and
// forwards Flush for SSE streaming.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying flusher so SSE responses stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware wraps the mux in request logging and guard-based panic
// recovery: a panicking handler yields a 500 (when nothing was written
// yet) and a logged stack instead of a dead connection and process.
func (s *Server) middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		err := guard.Run("http "+r.Method+" "+r.URL.Path, func() error {
			h.ServeHTTP(sw, r)
			return nil
		})
		if err != nil {
			if !sw.wrote {
				http.Error(sw, "internal server error", http.StatusInternalServerError)
			}
			s.logf("server: %+v", err)
		}
		s.logf("server: %s %s %d %s", r.Method, r.URL.Path, sw.code, time.Since(start).Round(time.Millisecond))
	})
}

// jobRequest is the POST /v1/jobs body: exactly one data source (an
// inline CSV relation or a built-in dataset generator) plus options.
type jobRequest struct {
	// Name names the uploaded CSV relation (default "upload").
	Name string `json:"name,omitempty"`
	// CSV is the inline relation, header first, empty fields as nulls.
	CSV string `json:"csv,omitempty"`
	// Lenient skips malformed CSV rows instead of failing the job.
	Lenient bool `json:"lenient,omitempty"`
	// Dataset selects a built-in generator instead of an upload.
	Dataset *datasetSpec `json:"dataset,omitempty"`
	// Parent makes this a delta job: CSV carries only appended rows
	// (same header as the parent's input) and the job re-normalizes the
	// parent's instance plus those rows incrementally, reusing the
	// parent run's FD cover and scoring facts. Parent names a prior job
	// by ID or by content-hash cache key; the referenced job must have
	// completed ("done") without degradations. Delta jobs cannot combine
	// with dataset generators, lenient parsing, or resource budgets.
	Parent string `json:"parent,omitempty"`
	// Options maps onto normalize.Options.
	Options optionsSpec `json:"options"`
}

// datasetSpec parameterizes a built-in dataset generator.
type datasetSpec struct {
	Generator string  `json:"generator"`
	Scale     float64 `json:"scale,omitempty"`   // tpch scale factor
	Artists   int     `json:"artists,omitempty"` // musicbrainz size
	Seed      int64   `json:"seed,omitempty"`
}

// optionsSpec is the wire form of normalize.Options.
type optionsSpec struct {
	Mode           string `json:"mode,omitempty"`    // bcnf | 3nf | 2nf
	Closure        string `json:"closure,omitempty"` // optimized | improved | naive
	MaxLhs         int    `json:"max_lhs,omitempty"`
	Workers        int    `json:"workers,omitempty"`
	TimeoutMS      int64  `json:"timeout_ms,omitempty"`
	MaxRows        int    `json:"max_rows,omitempty"`
	MaxFDs         int    `json:"max_fds,omitempty"`
	MaxMemoryBytes int64  `json:"max_memory_bytes,omitempty"`
}

// buildSpec validates a request into an immutable jobSpec. A delta
// job's cache key cannot be derived here — it needs the parent
// reference resolved to a content key first — so spec.key stays empty
// until the manager's submit path (or decodeSpec, which persists the
// resolved key) fills it via finalizeDeltaKey.
func buildSpec(req *jobRequest) (*jobSpec, error) {
	hasCSV := req.CSV != ""
	hasGen := req.Dataset != nil
	if hasCSV == hasGen {
		return nil, errors.New("exactly one of csv or dataset must be set")
	}
	if req.Parent != "" {
		if hasGen {
			return nil, errors.New("delta jobs take appended csv rows, not a dataset generator")
		}
		if req.Lenient {
			return nil, errors.New("delta jobs cannot use lenient parsing")
		}
		if req.Options.MaxRows != 0 || req.Options.MaxFDs != 0 || req.Options.MaxMemoryBytes != 0 {
			return nil, errors.New("delta jobs cannot use resource budgets")
		}
	}
	if req.Options.MaxLhs < 0 || req.Options.Workers < 0 || req.Options.TimeoutMS < 0 ||
		req.Options.MaxRows < 0 || req.Options.MaxFDs < 0 || req.Options.MaxMemoryBytes < 0 {
		return nil, errors.New("options must be non-negative")
	}
	mode, err := normalize.ParseMode(req.Options.Mode)
	if err != nil {
		return nil, err
	}
	closure, err := normalize.ParseClosure(req.Options.Closure)
	if err != nil {
		return nil, err
	}
	spec := &jobSpec{
		opts: normalize.Options{
			Mode:    mode,
			Closure: closure,
			MaxLhs:  req.Options.MaxLhs,
			Workers: req.Options.Workers,
			Timeout: time.Duration(req.Options.TimeoutMS) * time.Millisecond,
			Budget: normalize.Budget{
				MaxRows:        req.Options.MaxRows,
				MaxFDs:         req.Options.MaxFDs,
				MaxMemoryBytes: req.Options.MaxMemoryBytes,
			},
		},
	}
	if hasCSV {
		spec.csv = []byte(req.CSV)
		spec.name = req.Name
		if spec.name == "" {
			spec.name = "upload"
		}
		spec.lenient = req.Lenient
	} else {
		switch req.Dataset.Generator {
		case "tpch", "musicbrainz", "horse", "plista", "amalgam1", "flight":
		default:
			return nil, fmt.Errorf("unknown generator %q", req.Dataset.Generator)
		}
		spec.gen = req.Dataset.Generator
		spec.scale = req.Dataset.Scale
		spec.artists = req.Dataset.Artists
		spec.seed = req.Dataset.Seed
	}
	spec.parentRef = req.Parent
	if spec.parentRef == "" {
		spec.key = cacheKey(spec)
	}
	return spec, nil
}

// jobStatus is the wire form of a job's lifecycle state.
type jobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Key is the job's content-hash cache key — the stable name a later
	// delta submission can pass as "parent" (job IDs die with the job
	// listing; keys are derived from content and survive restarts).
	Key string `json:"key,omitempty"`
	// Parent is the resolved parent content key of a delta job.
	Parent       string                   `json:"parent,omitempty"`
	Cached       bool                     `json:"cached,omitempty"`
	Created      time.Time                `json:"created"`
	Started      *time.Time               `json:"started,omitempty"`
	Finished     *time.Time               `json:"finished,omitempty"`
	Error        string                   `json:"error,omitempty"`
	Tables       int                      `json:"tables,omitempty"`
	SkippedRows  int                      `json:"skipped_rows,omitempty"`
	Degradations []export.JSONDegradation `json:"degradations,omitempty"`
	Links        map[string]string        `json:"links"`
}

func statusOf(j *Job) jobStatus {
	state, started, finished, res, err, cached, skipped := j.snapshot()
	st := jobStatus{
		ID:          j.ID,
		State:       state,
		Cached:      cached,
		Created:     j.Created,
		SkippedRows: skipped,
		Links: map[string]string{
			"self":      "/v1/jobs/" + j.ID,
			"events":    "/v1/jobs/" + j.ID + "/events",
			"result":    "/v1/jobs/" + j.ID + "/result",
			"telemetry": "/v1/jobs/" + j.ID + "/telemetry",
		},
	}
	if j.spec != nil {
		st.Key = j.spec.key
		st.Parent = j.spec.parentKey
	}
	if !started.IsZero() {
		st.Started = &started
	}
	if !finished.IsZero() {
		st.Finished = &finished
	}
	if err != nil {
		st.Error = err.Error()
	}
	if res != nil {
		st.Tables = len(res.Tables)
		st.Degradations = export.Degradations(res.Degradations)
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req jobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Resolve the server-wide validation-worker default before the spec
	// (and its cache key) is built, so the persisted job and its replay
	// carry the worker count the run actually used.
	if req.Options.Workers == 0 {
		req.Options.Workers = s.cfg.JobWorkers
	}
	spec, err := buildSpec(&req)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrBadParent):
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	code := http.StatusAccepted
	if job.State().Terminal() { // cache hit
		code = http.StatusOK
	}
	writeJSON(w, code, statusOf(job))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.m.Jobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, statusOf(j))
}

// handleTelemetry scrapes the job's per-stage telemetry — spans,
// wall-times, counters — as JSON. The recorder aggregates
// incrementally, so scraping is cheap and safe while the job runs.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.rec.WriteJSON(w); err != nil {
		s.logf("server: telemetry %s: %v", j.ID, err)
	}
}

// resultPayload is the GET /v1/jobs/{id}/result body.
type resultPayload struct {
	ID           string                   `json:"id"`
	State        State                    `json:"state"`
	Cached       bool                     `json:"cached,omitempty"`
	Error        string                   `json:"error,omitempty"`
	Schema       json.RawMessage          `json:"schema,omitempty"`
	DDL          string                   `json:"ddl,omitempty"`
	Degradations []export.JSONDegradation `json:"degradations,omitempty"`
	// Rows maps table names to their materialized instances (only with
	// ?include=rows; column order follows the schema's attribute lists).
	Rows map[string][][]string `json:"rows,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	state, _, _, res, jerr, cached, _ := j.snapshot()
	if !state.Terminal() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "job not finished (state "+string(state)+")", http.StatusConflict)
		return
	}
	if res == nil {
		msg := "job produced no result"
		if jerr != nil {
			msg = jerr.Error()
		}
		writeJSON(w, http.StatusUnprocessableEntity, resultPayload{
			ID: j.ID, State: state, Error: msg,
		})
		return
	}
	if r.URL.Query().Get("format") == "sql" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, normalize.DDL(res.Tables))
		if len(res.Degradations) > 0 {
			io.WriteString(w, "-- degradations:\n")
			io.WriteString(w, normalize.FormatDegradations(res.Degradations))
		}
		return
	}
	schema, err := normalize.SchemaJSON(res)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	payload := resultPayload{
		ID:           j.ID,
		State:        state,
		Cached:       cached,
		Schema:       schema,
		DDL:          normalize.DDL(res.Tables),
		Degradations: export.Degradations(res.Degradations),
	}
	if jerr != nil {
		payload.Error = jerr.Error()
	}
	if r.URL.Query().Get("include") == "rows" {
		payload.Rows = make(map[string][][]string, len(res.Tables))
		for _, t := range res.Tables {
			payload.Rows[t.Name] = t.Data.Rows()
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleEvents streams the job's progress as Server-Sent Events: the
// replay history first, then live events until the terminal state
// event ends the stream. Periodic comment lines keep idle connections
// alive through proxies.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := j.bus.subscribe()
	defer sub.cancel()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		events, done := sub.poll()
		for _, e := range events {
			if err := writeSSE(w, e); err != nil {
				s.logEventStreamEnd(j.ID, err)
				return
			}
		}
		if len(events) > 0 || done {
			flusher.Flush()
		}
		if done {
			return // terminal event delivered; stream complete
		}
		select {
		case <-sub.wake:
		case <-keepalive.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				s.logEventStreamEnd(j.ID, err)
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// logEventStreamEnd classifies a failed SSE write. A consumer closing
// its event stream mid-job — Ctrl-C on a curl, a browser tab closing —
// is normal operation, not a job failure, and must not read like one
// in the logs.
func (s *Server) logEventStreamEnd(id string, err error) {
	if isClientDisconnect(err) {
		s.logf("server: events %s: client disconnected", id)
		return
	}
	s.logf("server: events %s: write failed: %v", id, err)
}

// isClientDisconnect reports whether err is the far end going away
// rather than a server-side fault. The string fallbacks cover wrapped
// net.OpErrors whose cause does not survive errors.Is across platforms.
func isClientDisconnect(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, context.Canceled) ||
		errors.Is(err, http.ErrHandlerTimeout) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "broken pipe") ||
		strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "client disconnected")
}

// writeSSE renders one event in SSE wire format.
func writeSSE(w io.Writer, e event) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, e.Data)
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
