package server

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seedSpillFiles drops fake orphaned spill files — the names
// os.CreateTemp would have produced for out-of-core ingest blocks and
// compressed PLI segments — plus an unrelated file that must survive
// every sweep.
func seedSpillFiles(t *testing.T, dir string) (orphans []string, keep string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ingest-spill-1234.bin", "pli-spill-5678.bin"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("orphaned spill payload"), 0o600); err != nil {
			t.Fatal(err)
		}
		orphans = append(orphans, p)
	}
	keep = filepath.Join(dir, "unrelated.txt")
	if err := os.WriteFile(keep, []byte("not a spill file"), 0o600); err != nil {
		t.Fatal(err)
	}
	return orphans, keep
}

// TestSpillSweepOnStartup pins the leak contract's first half: a
// previous process that died mid-job leaves transient spill files
// behind, and New must remove them before accepting work — without
// touching anything else in the directory.
func TestSpillSweepOnStartup(t *testing.T) {
	spillDir := filepath.Join(t.TempDir(), "spill")
	orphans, keep := seedSpillFiles(t, spillDir)

	s := testServer(t, Config{Workers: 1, SpillDir: spillDir})
	_ = s

	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphaned spill file survived startup sweep: %s", p)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("startup sweep removed an unrelated file: %v", err)
	}
}

// TestSpillSweepOnShutdown pins the second half: files leaked by a
// cancelled or crashed job during the server's lifetime are removed
// when the drained pool exits.
func TestSpillSweepOnShutdown(t *testing.T) {
	spillDir := filepath.Join(t.TempDir(), "spill")
	s := testServer(t, Config{Workers: 1, SpillDir: spillDir})

	// Run one real job so the sweep happens on a server that actually
	// worked, then fake a leak after it finishes.
	h := s.Handler()
	st := submit(t, h, csvBody(addressCSV, ""))
	if st = waitTerminal(t, h, st.ID); st.State != StateDone {
		t.Fatalf("job state = %s, want done", st.State)
	}
	orphans, keep := seedSpillFiles(t, spillDir)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx) // idempotent: the testServer cleanup's second call is a no-op

	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("leaked spill file survived shutdown sweep: %s", p)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("shutdown sweep removed an unrelated file: %v", err)
	}
}

// TestSpillDirDefaultsUnderDataDir checks the config plumbing: with
// only DataDir set, jobs spill under <DataDir>/spill, and the
// directory exists after New.
func TestSpillDirDefaultsUnderDataDir(t *testing.T) {
	dataDir := t.TempDir()
	s := testServer(t, Config{Workers: 1, DataDir: dataDir})
	want := filepath.Join(dataDir, "spill")
	if s.cfg.SpillDir != want {
		t.Fatalf("SpillDir = %q, want %q", s.cfg.SpillDir, want)
	}
	if fi, err := os.Stat(want); err != nil || !fi.IsDir() {
		t.Fatalf("default spill dir not created: %v", err)
	}
}
