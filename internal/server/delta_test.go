package server

// Delta-plane tests: incremental append jobs over the HTTP surface.
// The pinned guarantee is differential — a delta job's DDL is
// byte-identical to a from-scratch run over the concatenated input —
// plus the operational contract around it: parent addressing by job ID
// and by content key, chained appends, cache hits on identical delta
// resubmissions, the delta counters in telemetry, 400s on bad parents,
// and lineage that survives a restart.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"normalize"
	"normalize/internal/jobstore"
)

// delta1CSV breaks Postcode→City (14482 now maps to both Potsdam and
// Berlin) while Postcode→Mayor keeps holding — the revalidator must
// demote and re-specialize, not just rubber-stamp the parent cover.
const delta1CSV = `First,Last,Postcode,City,Mayor
Anna,Berg,14482,Berlin,Jakobs
Omar,Webb,60329,Frankfurt,Feldmann
`

// delta2CSV appends only fresh singleton values: no agreeing pairs with
// the base, so the parent lattice is reused verbatim.
const delta2CSV = `First,Last,Postcode,City,Mayor
Lena,Fox,99999,Erfurt,Mayer
`

// concatRows strips a delta CSV's header and appends its rows to a base
// CSV, producing the from-scratch equivalent input.
func concatRows(base string, deltas ...string) string {
	var b strings.Builder
	b.WriteString(base)
	for _, d := range deltas {
		_, rows, _ := strings.Cut(d, "\n")
		b.WriteString(rows)
	}
	return b.String()
}

// deltaBody renders a delta job submission: appended rows plus the
// parent reference (job ID or content key).
func deltaBody(csv, parent string) string {
	raw, _ := json.Marshal(csv)
	ref, _ := json.Marshal(parent)
	return `{"name":"address","csv":` + string(raw) + `,"parent":` + string(ref) + `,"options":{}}`
}

// fetchDDL retrieves a finished job's schema as SQL text.
func fetchDDL(t *testing.T, h http.Handler, id string) string {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+id+"/result?format=sql", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("result %s: %d %s", id, rr.Code, rr.Body.String())
	}
	return rr.Body.String()
}

func TestDeltaJobMatchesFromScratch(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()

	parent := waitTerminal(t, h, submit(t, h, csvBody(addressCSV, "")).ID)
	if parent.State != StateDone || parent.Key == "" {
		t.Fatalf("parent: state=%s key=%q", parent.State, parent.Key)
	}

	// Delta addressed by job ID; the same instance from scratch.
	d1 := waitTerminal(t, h, submit(t, h, deltaBody(delta1CSV, parent.ID)).ID)
	if d1.State != StateDone {
		t.Fatalf("delta job: %s (%s)", d1.State, d1.Error)
	}
	if d1.Parent != parent.Key {
		t.Fatalf("delta parent key = %q, want %q", d1.Parent, parent.Key)
	}
	scratch := waitTerminal(t, h, submit(t, h, csvBody(concatRows(addressCSV, delta1CSV), "")).ID)
	if got, want := fetchDDL(t, h, d1.ID), fetchDDL(t, h, scratch.ID); got != want {
		t.Errorf("delta DDL differs from from-scratch DDL:\n--- delta ---\n%s\n--- scratch ---\n%s", got, want)
	}

	// The same append addressed by the parent's CONTENT KEY derives the
	// same child key and answers straight from the result cache.
	rekey := submit(t, h, deltaBody(delta1CSV, parent.Key))
	if !rekey.Cached || rekey.State != StateDone || rekey.Key != d1.Key {
		t.Errorf("content-key resubmission: cached=%t state=%s key match=%t",
			rekey.Cached, rekey.State, rekey.Key == d1.Key)
	}

	// Chained append: the delta job itself serves as the next parent.
	d2 := waitTerminal(t, h, submit(t, h, deltaBody(delta2CSV, d1.ID)).ID)
	if d2.State != StateDone {
		t.Fatalf("chained delta: %s (%s)", d2.State, d2.Error)
	}
	scratch2 := waitTerminal(t, h, submit(t, h, csvBody(concatRows(addressCSV, delta1CSV, delta2CSV), "")).ID)
	if got, want := fetchDDL(t, h, d2.ID), fetchDDL(t, h, scratch2.ID); got != want {
		t.Errorf("chained delta DDL differs from from-scratch DDL")
	}

	// The delta counters reach the job's telemetry scrape.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+d1.ID+"/telemetry", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("telemetry: %d", rr.Code)
	}
	for _, counter := range []string{"delta_fds_checked", "delta_fds_demoted", "delta_lattice_reused"} {
		if !strings.Contains(rr.Body.String(), counter) {
			t.Errorf("telemetry missing %s", counter)
		}
	}
}

func TestDeltaSubmitRejectsBadParents(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	parent := waitTerminal(t, h, submit(t, h, csvBody(addressCSV, "")).ID)

	post := func(body string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body)))
		return rr
	}
	cases := []struct {
		name, body string
		code       int
		errFrag    string
	}{
		{"unknown ref", deltaBody(delta1CSV, "nosuchjob"), http.StatusBadRequest, "no job ID or content key"},
		{"generator delta", `{"dataset":{"generator":"horse"},"parent":"` + parent.ID + `"}`,
			http.StatusBadRequest, "dataset generator"},
		{"budgeted delta", `{"name":"a","csv":"A\n1\n","parent":"` + parent.ID + `","options":{"max_rows":5}}`,
			http.StatusBadRequest, "resource budgets"},
	}
	for _, tc := range cases {
		rr := post(tc.body)
		if rr.Code != tc.code || !strings.Contains(rr.Body.String(), tc.errFrag) {
			t.Errorf("%s: code=%d body=%s", tc.name, rr.Code, rr.Body.String())
		}
	}
	// A header mismatch is only detectable at run time (the parent's
	// relation must be materialized first); the job fails cleanly.
	st := waitTerminal(t, h, submit(t, h, deltaBody("Wrong,Header\nx,y\n", parent.ID)).ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "does not match parent attributes") {
		t.Errorf("mismatched header: state=%s err=%q", st.State, st.Error)
	}
}

// TestCacheByteBudget: the result cache is charged by encoded-result
// size, not just entry count — delta-derived (lineage child) results
// are full results charged like any other, so long append chains can't
// hide an unbounded memory footprint behind a small entry count.
func TestCacheByteBudget(t *testing.T) {
	unit := encodedSize(&normalize.Result{})
	if unit <= 0 {
		t.Fatalf("encodedSize of an empty result = %d", unit)
	}
	// Budget fits two entries but not three; the count bound never
	// binds, so eviction here is purely byte-driven.
	c := newResultCache(100, 2*unit)
	c.put("a", &normalize.Result{})
	c.put("b", &normalize.Result{})
	if c.Bytes() != 2*unit || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want %d/2", c.Bytes(), c.Len(), 2*unit)
	}
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", &normalize.Result{})
	if _, ok := c.get("b"); ok {
		t.Error("byte budget exceeded but LRU entry not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("refreshed entry evicted ahead of LRU")
	}
	if c.Bytes() > 2*unit {
		t.Errorf("bytes=%d exceeds budget %d", c.Bytes(), 2*unit)
	}

	// An entry larger than the whole budget is still admitted — alone.
	tight := newResultCache(100, unit/2)
	tight.put("big", &normalize.Result{})
	if tight.Len() != 1 {
		t.Fatal("oversized entry rejected outright")
	}
	tight.put("big2", &normalize.Result{})
	if _, ok := tight.get("big"); ok || tight.Len() != 1 {
		t.Error("oversized entries accumulated past the budget")
	}
}

// TestDeltaLineagePersistsAndRestores: a delta job's ancestry edge is
// durable — visible in the job store after shutdown, and the restarted
// server answers an identical delta resubmission from the rehydrated
// cache without recomputing.
func TestDeltaLineagePersistsAndRestores(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, DataDir: dir, MetricsName: "test_delta_persist_1"}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	parent := waitTerminal(t, h, submit(t, h, csvBody(addressCSV, "")).ID)
	d1 := waitTerminal(t, h, submit(t, h, deltaBody(delta1CSV, parent.ID)).ID)
	if d1.State != StateDone {
		t.Fatalf("delta job: %s (%s)", d1.State, d1.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)

	// The lineage edge is on disk: (parent key, delta hash) → child key.
	store, _, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	edge, ok := store.LookupLineage(d1.Key)
	if !ok || edge.Parent != parent.Key || edge.JobID != d1.ID {
		t.Fatalf("lineage edge = %+v, %v; want parent %q job %q", edge, ok, parent.Key, d1.ID)
	}
	wireCSV := func(s string) []byte { // spec stores the JSON string's bytes
		var out string
		raw, _ := json.Marshal(s)
		json.Unmarshal(raw, &out)
		return []byte(out)
	}
	if edge.Delta != deltaHash(wireCSV(delta1CSV)) {
		t.Errorf("lineage delta hash = %q", edge.Delta)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the restored delta spec re-finalizes to the same child
	// key, so the identical resubmission (by content key) is a cache hit.
	cfg.MetricsName = "test_delta_persist_2"
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	h2 := s2.Handler()
	again := submit(t, h2, deltaBody(delta1CSV, parent.Key))
	if !again.Cached || again.State != StateDone || again.Key != d1.Key {
		t.Errorf("post-restart resubmission: cached=%t state=%s key=%q want %q",
			again.Cached, again.State, again.Key, d1.Key)
	}
	// The restored delta job itself kept its identity.
	restored := getStatus(t, h2, d1.ID)
	if restored.Key != d1.Key || restored.Parent != parent.Key {
		t.Errorf("restored delta job: key=%q parent=%q", restored.Key, restored.Parent)
	}
}
