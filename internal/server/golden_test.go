package server

// Golden-file tests for the ?format=sql result rendering: the full DDL
// the server emits for the TPC-H and MusicBrainz generator datasets is
// pinned byte-for-byte under testdata/. The generators, the pipeline,
// and the SQL rendering are all deterministic for a fixed seed, so any
// diff here is a real behavior change — inspect it, then refresh with
//
//	go test ./internal/server -run TestGoldenDDL -update
//
// and review the golden diff like any other code change.

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenDDL submits the job, waits for it, and returns the ?format=sql
// result body.
func goldenDDL(t *testing.T, body string) string {
	t.Helper()
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()
	st := submit(t, h, body)
	waitTerminal(t, h, st.ID)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result?format=sql", nil))
	if rr.Code != 200 {
		t.Fatalf("result: %d %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	return rr.Body.String()
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("DDL drifted from %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestGoldenDDLTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("generator-backed golden test")
	}
	ddl := goldenDDL(t,
		`{"dataset":{"generator":"tpch","scale":0.0001,"seed":1},"options":{"max_lhs":3}}`)
	checkGolden(t, "tpch_sf0.0001_seed1", ddl)
}

func TestGoldenDDLMusicBrainz(t *testing.T) {
	if testing.Short() {
		t.Skip("generator-backed golden test")
	}
	ddl := goldenDDL(t,
		`{"dataset":{"generator":"musicbrainz","artists":8,"seed":1},"options":{"max_lhs":3}}`)
	checkGolden(t, "musicbrainz_a8_seed1", ddl)
}
