// Package fd defines functional dependencies and their containers: the
// aggregated FD (one left-hand side with a bitset of right-hand-side
// attributes, the notation Postcode→City,Mayor of the paper), flat FD
// sets as exchanged between the pipeline components, and a prefix-tree
// cover (Tree) used by the HyFD-style discovery for induction and
// minimality reasoning.
package fd

import (
	"fmt"
	"sort"
	"strings"

	"normalize/internal/bitset"
)

// FD is a functional dependency Lhs → Rhs with an aggregated right-hand
// side: every attribute in Rhs is determined by Lhs. Following the
// paper, Lhs attributes are kept implicit on the right (reflexivity is
// never materialized), so Lhs ∩ Rhs = ∅ for canonical FDs.
type FD struct {
	Lhs *bitset.Set
	Rhs *bitset.Set
}

// Clone returns a deep copy.
func (f *FD) Clone() *FD { return &FD{Lhs: f.Lhs.Clone(), Rhs: f.Rhs.Clone()} }

// String renders the FD with attribute indices, e.g. "{2} -> {3, 4}".
func (f *FD) String() string {
	return f.Lhs.String() + " -> " + f.Rhs.String()
}

// Format renders the FD with attribute names, e.g.
// "Postcode -> City,Mayor".
func (f *FD) Format(attrs []string) string {
	name := func(s *bitset.Set) string {
		parts := make([]string, 0, s.Cardinality())
		s.ForEach(func(e int) bool {
			parts = append(parts, attrs[e])
			return true
		})
		if len(parts) == 0 {
			return "∅"
		}
		return strings.Join(parts, ",")
	}
	return name(f.Lhs) + " -> " + name(f.Rhs)
}

// Set is a collection of FDs over a relation with NumAttrs attributes.
type Set struct {
	NumAttrs int
	FDs      []*FD
}

// NewSet returns an empty FD set over the given universe.
func NewSet(numAttrs int) *Set { return &Set{NumAttrs: numAttrs} }

// Add appends the FD Lhs → Rhs. The sets are cloned, so callers may
// reuse their arguments.
func (s *Set) Add(lhs, rhs *bitset.Set) {
	s.FDs = append(s.FDs, &FD{Lhs: lhs.Clone(), Rhs: rhs.Clone()})
}

// AddAttrs is Add with element lists, convenient in tests.
func (s *Set) AddAttrs(lhs []int, rhs []int) {
	s.Add(bitset.Of(s.NumAttrs, lhs...), bitset.Of(s.NumAttrs, rhs...))
}

// Len returns the number of aggregated FDs (distinct left-hand sides if
// the set is aggregated).
func (s *Set) Len() int { return len(s.FDs) }

// CountSingle returns the number of single-RHS FDs, i.e. Σ|Rhs|. This
// is the FD count the paper reports (e.g. 128,727 FDs for Horse).
func (s *Set) CountSingle() int {
	n := 0
	for _, f := range s.FDs {
		n += f.Rhs.Cardinality()
	}
	return n
}

// AverageRhsSize returns the mean |Rhs| over all FDs, the quantity the
// paper uses to explain the optimized closure's advantage (§8.2).
func (s *Set) AverageRhsSize() float64 {
	if len(s.FDs) == 0 {
		return 0
	}
	return float64(s.CountSingle()) / float64(len(s.FDs))
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{NumAttrs: s.NumAttrs, FDs: make([]*FD, len(s.FDs))}
	for i, f := range s.FDs {
		c.FDs[i] = f.Clone()
	}
	return c
}

// Aggregate merges FDs with equal left-hand sides by unioning their
// right-hand sides, removes Lhs attributes from Rhs sides (canonical
// non-trivial form), and drops FDs with empty Rhs. It returns the
// receiver.
func (s *Set) Aggregate() *Set {
	byLhs := make(map[string]*FD, len(s.FDs))
	out := s.FDs[:0]
	for _, f := range s.FDs {
		f.Rhs.DifferenceWith(f.Lhs)
		k := f.Lhs.Key()
		if prev, ok := byLhs[k]; ok {
			prev.Rhs.UnionWith(f.Rhs)
			continue
		}
		byLhs[k] = f
		out = append(out, f)
	}
	s.FDs = out[:0]
	for _, f := range out {
		if !f.Rhs.IsEmpty() {
			s.FDs = append(s.FDs, f)
		}
	}
	return s
}

// Sort orders FDs by ascending Lhs cardinality, then lexicographically
// by Lhs elements, for deterministic output. It returns the receiver.
func (s *Set) Sort() *Set {
	sort.Slice(s.FDs, func(i, j int) bool {
		a, b := s.FDs[i].Lhs, s.FDs[j].Lhs
		if ca, cb := a.Cardinality(), b.Cardinality(); ca != cb {
			return ca < cb
		}
		ea, eb := a.First(), b.First()
		for ea >= 0 && eb >= 0 {
			if ea != eb {
				return ea < eb
			}
			ea, eb = a.NextAfter(ea), b.NextAfter(eb)
		}
		return eb >= 0
	})
	return s
}

// Equal reports whether two FD sets contain the same dependencies,
// regardless of order and aggregation.
func (s *Set) Equal(o *Set) bool {
	if s.NumAttrs != o.NumAttrs {
		return false
	}
	a := s.Clone().Aggregate()
	b := o.Clone().Aggregate()
	if len(a.FDs) != len(b.FDs) {
		return false
	}
	byLhs := make(map[string]*FD, len(a.FDs))
	for _, f := range a.FDs {
		byLhs[f.Lhs.Key()] = f
	}
	for _, f := range b.FDs {
		g, ok := byLhs[f.Lhs.Key()]
		if !ok || !g.Rhs.Equal(f.Rhs) {
			return false
		}
	}
	return true
}

// Format renders the whole set with attribute names, one FD per line.
func (s *Set) Format(attrs []string) string {
	var b strings.Builder
	for _, f := range s.FDs {
		b.WriteString(f.Format(attrs))
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural invariants: universe sizes match and FDs
// are non-trivial. Intended for tests and debugging.
func (s *Set) Validate() error {
	for i, f := range s.FDs {
		if f.Lhs.Size() != s.NumAttrs || f.Rhs.Size() != s.NumAttrs {
			return fmt.Errorf("fd %d: universe mismatch", i)
		}
		if f.Lhs.Intersects(f.Rhs) {
			return fmt.Errorf("fd %d (%v): trivial rhs attributes", i, f)
		}
	}
	return nil
}
