package fd

import "normalize/internal/bitset"

// Tree is a prefix tree over FD left-hand sides with right-hand-side
// attribute bitmaps at every node: the node reached by the (ascending)
// attribute path X carries the set of attributes A for which X → A is
// stored. The tree supports the generalization and specialization
// queries that drive HyFD-style induction: "is there a stored FD whose
// Lhs is a subset of this set?", "collect/remove all such FDs", and
// minimal insertion.
type Tree struct {
	numAttrs int
	root     *treeNode
}

type treeNode struct {
	rhs      *bitset.Set // FDs ending at this node
	children []*treeNode // dense, indexed by attribute
}

// NewTree returns an empty FD tree over numAttrs attributes.
func NewTree(numAttrs int) *Tree {
	return &Tree{numAttrs: numAttrs, root: newTreeNode(numAttrs)}
}

func newTreeNode(numAttrs int) *treeNode {
	return &treeNode{rhs: bitset.New(numAttrs), children: make([]*treeNode, numAttrs)}
}

// NumAttrs returns the universe size.
func (t *Tree) NumAttrs() int { return t.numAttrs }

// Add stores the FD lhs → rhsAttr, without minimality checks.
func (t *Tree) Add(lhs *bitset.Set, rhsAttr int) {
	n := t.root
	lhs.ForEach(func(e int) bool {
		if n.children[e] == nil {
			n.children[e] = newTreeNode(t.numAttrs)
		}
		n = n.children[e]
		return true
	})
	n.rhs.Add(rhsAttr)
}

// AddSet stores lhs → a for every a in rhs.
func (t *Tree) AddSet(lhs, rhs *bitset.Set) {
	n := t.root
	lhs.ForEach(func(e int) bool {
		if n.children[e] == nil {
			n.children[e] = newTreeNode(t.numAttrs)
		}
		n = n.children[e]
		return true
	})
	n.rhs.UnionWith(rhs)
}

// Contains reports whether exactly lhs → rhsAttr is stored.
func (t *Tree) Contains(lhs *bitset.Set, rhsAttr int) bool {
	n := t.root
	ok := true
	lhs.ForEach(func(e int) bool {
		if n.children[e] == nil {
			ok = false
			return false
		}
		n = n.children[e]
		return true
	})
	return ok && n.rhs.Contains(rhsAttr)
}

// ContainsGeneralization reports whether some stored FD X → rhsAttr has
// X ⊆ lhs (including X = lhs).
func (t *Tree) ContainsGeneralization(lhs *bitset.Set, rhsAttr int) bool {
	return containsGen(t.root, lhs, -1, rhsAttr)
}

func containsGen(n *treeNode, lhs *bitset.Set, after, rhsAttr int) bool {
	if n.rhs.Contains(rhsAttr) {
		return true
	}
	for e := lhs.NextAfter(after); e >= 0; e = lhs.NextAfter(e) {
		if c := n.children[e]; c != nil && containsGen(c, lhs, e, rhsAttr) {
			return true
		}
	}
	return false
}

// CollectGeneralizations returns the Lhs of every stored FD X → rhsAttr
// with X ⊆ lhs.
func (t *Tree) CollectGeneralizations(lhs *bitset.Set, rhsAttr int) []*bitset.Set {
	var out []*bitset.Set
	collectGen(t.root, lhs, -1, rhsAttr, make([]int, 0, 16), &out, t.numAttrs)
	return out
}

func collectGen(n *treeNode, lhs *bitset.Set, after, rhsAttr int, prefix []int, out *[]*bitset.Set, numAttrs int) {
	if n.rhs.Contains(rhsAttr) {
		*out = append(*out, bitset.Of(numAttrs, prefix...))
	}
	for e := lhs.NextAfter(after); e >= 0; e = lhs.NextAfter(e) {
		if c := n.children[e]; c != nil {
			collectGen(c, lhs, e, rhsAttr, append(prefix, e), out, numAttrs)
		}
	}
}

// ViolatedBy returns every stored FD that a record pair with the given
// agree set refutes: all (lhs, badRhs) with lhs ⊆ agree and
// badRhs = rhs \ agree non-empty. One tree walk serves all RHS
// attributes at once, which is what makes HyFD-style induction cheap.
func (t *Tree) ViolatedBy(agree *bitset.Set) []FD {
	var out []FD
	t.violatedBy(t.root, agree, -1, make([]int, 0, 16), &out)
	return out
}

func (t *Tree) violatedBy(n *treeNode, agree *bitset.Set, after int, prefix []int, out *[]FD) {
	if !n.rhs.IsEmpty() {
		bad := n.rhs.Difference(agree)
		if !bad.IsEmpty() {
			*out = append(*out, FD{Lhs: bitset.Of(t.numAttrs, prefix...), Rhs: bad})
		}
	}
	for e := agree.NextAfter(after); e >= 0; e = agree.NextAfter(e) {
		if c := n.children[e]; c != nil {
			t.violatedBy(c, agree, e, append(prefix, e), out)
		}
	}
}

// RemoveRhs deletes lhs → a for every a in rhs with a single path walk.
func (t *Tree) RemoveRhs(lhs *bitset.Set, rhs *bitset.Set) {
	n := t.root
	ok := true
	lhs.ForEach(func(e int) bool {
		if n.children[e] == nil {
			ok = false
			return false
		}
		n = n.children[e]
		return true
	})
	if ok {
		n.rhs.DifferenceWith(rhs)
	}
}

// Remove deletes the FD lhs → rhsAttr if stored. Empty nodes are not
// physically pruned; the tree stays correct regardless.
func (t *Tree) Remove(lhs *bitset.Set, rhsAttr int) {
	n := t.root
	ok := true
	lhs.ForEach(func(e int) bool {
		if n.children[e] == nil {
			ok = false
			return false
		}
		n = n.children[e]
		return true
	})
	if ok {
		n.rhs.Remove(rhsAttr)
	}
}

// AddMinimal inserts lhs → rhsAttr only if no generalization is stored,
// and removes all stored specializations (FDs Y → rhsAttr with
// lhs ⊂ Y). It reports whether the FD was inserted. Maintaining this
// invariant on every insert keeps the tree a minimal cover.
func (t *Tree) AddMinimal(lhs *bitset.Set, rhsAttr int) bool {
	if t.ContainsGeneralization(lhs, rhsAttr) {
		return false
	}
	t.removeSpecializations(t.root, -1, lhs, lhs.First(), rhsAttr)
	t.Add(lhs, rhsAttr)
	return true
}

// removeSpecializations clears rhsAttr from every node whose ascending
// attribute path is a superset of lhs. nextLhs is the smallest lhs
// attribute not yet seen on the path (-1 when all are matched). Callers
// guarantee lhs → rhsAttr itself is absent (no generalization exists),
// so only proper specializations are removed.
func (t *Tree) removeSpecializations(n *treeNode, after int, lhs *bitset.Set, nextLhs, rhsAttr int) {
	if nextLhs < 0 && n.rhs.Contains(rhsAttr) {
		n.rhs.Remove(rhsAttr)
	}
	for e := after + 1; e < t.numAttrs; e++ {
		// Paths ascend, so once e passes the next required lhs
		// attribute, no deeper path can contain lhs anymore.
		if nextLhs >= 0 && e > nextLhs {
			return
		}
		c := n.children[e]
		if c == nil {
			continue
		}
		nl := nextLhs
		if e == nextLhs {
			nl = lhs.NextAfter(e)
		}
		t.removeSpecializations(c, e, lhs, nl, rhsAttr)
	}
}

// ToSet extracts all stored FDs as an aggregated Set.
func (t *Tree) ToSet() *Set {
	s := NewSet(t.numAttrs)
	t.walk(t.root, make([]int, 0, 16), func(path []int, rhs *bitset.Set) {
		lhs := bitset.Of(t.numAttrs, path...)
		s.FDs = append(s.FDs, &FD{Lhs: lhs, Rhs: rhs.Clone()})
	})
	return s
}

// Count returns the number of stored single-RHS FDs.
func (t *Tree) Count() int {
	n := 0
	t.walk(t.root, make([]int, 0, 16), func(_ []int, rhs *bitset.Set) {
		n += rhs.Cardinality()
	})
	return n
}

// Level calls f with every stored FD whose Lhs has exactly size
// attributes. Used by the level-wise HyFD validation.
func (t *Tree) Level(size int, f func(lhs *bitset.Set, rhs *bitset.Set)) {
	t.walk(t.root, make([]int, 0, 16), func(path []int, rhs *bitset.Set) {
		if len(path) == size {
			f(bitset.Of(t.numAttrs, path...), rhs.Clone())
		}
	})
}

// MaxLevel returns the largest Lhs size of any stored FD, or -1 when
// the tree is empty.
func (t *Tree) MaxLevel() int {
	max := -1
	t.walk(t.root, make([]int, 0, 16), func(path []int, _ *bitset.Set) {
		if len(path) > max {
			max = len(path)
		}
	})
	return max
}

func (t *Tree) walk(n *treeNode, path []int, f func(path []int, rhs *bitset.Set)) {
	if !n.rhs.IsEmpty() {
		f(path, n.rhs)
	}
	for e, c := range n.children {
		if c != nil {
			t.walk(c, append(path, e), f)
		}
	}
}
