package fd

import (
	"strings"
	"testing"

	"normalize/internal/bitset"
)

func TestFDStringAndFormat(t *testing.T) {
	f := &FD{Lhs: bitset.Of(5, 2), Rhs: bitset.Of(5, 3, 4)}
	if f.String() != "{2} -> {3, 4}" {
		t.Errorf("String = %q", f.String())
	}
	attrs := []string{"First", "Last", "Postcode", "City", "Mayor"}
	if got := f.Format(attrs); got != "Postcode -> City,Mayor" {
		t.Errorf("Format = %q", got)
	}
	empty := &FD{Lhs: bitset.New(5), Rhs: bitset.Of(5, 1)}
	if !strings.HasPrefix(empty.Format(attrs), "∅") {
		t.Errorf("empty lhs format = %q", empty.Format(attrs))
	}
}

func TestSetAddAndCounts(t *testing.T) {
	s := NewSet(5)
	s.AddAttrs([]int{2}, []int{3})
	s.AddAttrs([]int{2}, []int{4})
	s.AddAttrs([]int{0, 1}, []int{2, 3, 4})
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.CountSingle() != 5 {
		t.Errorf("CountSingle = %d", s.CountSingle())
	}
	s.Aggregate()
	if s.Len() != 2 || s.CountSingle() != 5 {
		t.Errorf("after aggregate: Len=%d CountSingle=%d", s.Len(), s.CountSingle())
	}
	if got := s.AverageRhsSize(); got != 2.5 {
		t.Errorf("AverageRhsSize = %v", got)
	}
}

func TestAggregateRemovesTrivialAndEmpty(t *testing.T) {
	s := NewSet(4)
	s.AddAttrs([]int{0, 1}, []int{1}) // fully trivial → dropped
	s.AddAttrs([]int{0}, []int{0, 2}) // lhs attr removed from rhs
	s.Aggregate()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.FDs[0].Rhs.Equal(bitset.Of(4, 2)) {
		t.Errorf("rhs = %v", s.FDs[0].Rhs)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(4)
	a.AddAttrs([]int{0}, []int{1})
	a.AddAttrs([]int{0}, []int{2})
	b := NewSet(4)
	b.AddAttrs([]int{0}, []int{2, 1})
	if !a.Equal(b) {
		t.Error("aggregation-equivalent sets not Equal")
	}
	c := NewSet(4)
	c.AddAttrs([]int{0}, []int{1})
	if a.Equal(c) {
		t.Error("different sets Equal")
	}
	d := NewSet(5)
	d.AddAttrs([]int{0}, []int{1, 2})
	if a.Equal(d) {
		t.Error("different universes Equal")
	}
}

func TestSetSortDeterministic(t *testing.T) {
	s := NewSet(4)
	s.AddAttrs([]int{1, 2}, []int{3})
	s.AddAttrs([]int{0}, []int{3})
	s.AddAttrs([]int{1}, []int{3})
	s.AddAttrs([]int{0, 3}, []int{1})
	s.Sort()
	want := []string{"{0}", "{1}", "{0, 3}", "{1, 2}"}
	for i, f := range s.FDs {
		if f.Lhs.String() != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, f.Lhs, want[i])
		}
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet(3)
	s.AddAttrs([]int{0}, []int{1})
	c := s.Clone()
	c.FDs[0].Rhs.Add(2)
	if s.FDs[0].Rhs.Contains(2) {
		t.Error("Clone not deep")
	}
}

func TestValidateCatchesTrivial(t *testing.T) {
	s := NewSet(3)
	s.FDs = append(s.FDs, &FD{Lhs: bitset.Of(3, 0), Rhs: bitset.Of(3, 0, 1)})
	if s.Validate() == nil {
		t.Error("trivial FD not caught")
	}
}

func TestFormatSet(t *testing.T) {
	s := NewSet(3)
	s.AddAttrs([]int{0}, []int{1})
	out := s.Format([]string{"a", "b", "c"})
	if out != "a -> b\n" {
		t.Errorf("Format = %q", out)
	}
}
