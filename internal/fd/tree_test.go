package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"normalize/internal/bitset"
)

func bs(n int, elems ...int) *bitset.Set { return bitset.Of(n, elems...) }

func TestTreeAddContains(t *testing.T) {
	tr := NewTree(5)
	tr.Add(bs(5, 0, 2), 3)
	if !tr.Contains(bs(5, 0, 2), 3) {
		t.Error("Contains after Add failed")
	}
	if tr.Contains(bs(5, 0, 2), 4) || tr.Contains(bs(5, 0), 3) || tr.Contains(bs(5, 0, 1, 2), 3) {
		t.Error("Contains reported FD never added")
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d", tr.Count())
	}
}

func TestTreeAddSetAndToSet(t *testing.T) {
	tr := NewTree(5)
	tr.AddSet(bs(5, 2), bs(5, 3, 4))
	tr.Add(bs(5, 0, 1), 2)
	s := tr.ToSet().Sort()
	if s.Len() != 2 || s.CountSingle() != 3 {
		t.Fatalf("ToSet: Len=%d CountSingle=%d", s.Len(), s.CountSingle())
	}
	if !s.FDs[0].Lhs.Equal(bs(5, 2)) || !s.FDs[0].Rhs.Equal(bs(5, 3, 4)) {
		t.Errorf("first FD = %v", s.FDs[0])
	}
}

func TestTreeGeneralization(t *testing.T) {
	tr := NewTree(6)
	tr.Add(bs(6, 1, 3), 5)
	if !tr.ContainsGeneralization(bs(6, 1, 3), 5) {
		t.Error("equal lhs must count as generalization")
	}
	if !tr.ContainsGeneralization(bs(6, 0, 1, 3), 5) {
		t.Error("superset lhs must find generalization")
	}
	if tr.ContainsGeneralization(bs(6, 1), 5) {
		t.Error("subset lhs is not a generalization holder")
	}
	if tr.ContainsGeneralization(bs(6, 0, 1, 3), 4) {
		t.Error("wrong rhs attribute matched")
	}
	// Empty-lhs FD generalizes everything.
	tr2 := NewTree(6)
	tr2.Add(bs(6), 2)
	if !tr2.ContainsGeneralization(bs(6, 4), 2) || !tr2.ContainsGeneralization(bs(6), 2) {
		t.Error("empty lhs must generalize all")
	}
}

func TestTreeCollectGeneralizations(t *testing.T) {
	tr := NewTree(6)
	tr.Add(bs(6, 1), 5)
	tr.Add(bs(6, 1, 3), 5)
	tr.Add(bs(6, 2), 5)
	tr.Add(bs(6, 1), 4)
	got := tr.CollectGeneralizations(bs(6, 1, 3), 5)
	if len(got) != 2 {
		t.Fatalf("collected %d generalizations, want 2", len(got))
	}
	seen := map[string]bool{}
	for _, g := range got {
		seen[g.String()] = true
	}
	if !seen["{1}"] || !seen["{1, 3}"] {
		t.Errorf("collected %v", seen)
	}
}

func TestTreeRemove(t *testing.T) {
	tr := NewTree(5)
	tr.Add(bs(5, 1, 2), 4)
	tr.Remove(bs(5, 1, 2), 4)
	if tr.Contains(bs(5, 1, 2), 4) || tr.Count() != 0 {
		t.Error("Remove failed")
	}
	// Removing a non-existent FD is a no-op.
	tr.Remove(bs(5, 0), 1)
	tr.Remove(bs(5, 1, 2, 3), 4)
}

func TestTreeAddMinimal(t *testing.T) {
	tr := NewTree(6)
	if !tr.AddMinimal(bs(6, 1, 3), 5) {
		t.Error("first insert must succeed")
	}
	// A specialization must be rejected.
	if tr.AddMinimal(bs(6, 0, 1, 3), 5) {
		t.Error("specialization insert must be rejected")
	}
	// A generalization must evict the specialization.
	if !tr.AddMinimal(bs(6, 1), 5) {
		t.Error("generalization insert must succeed")
	}
	if tr.Contains(bs(6, 1, 3), 5) {
		t.Error("specialization not removed")
	}
	if !tr.Contains(bs(6, 1), 5) {
		t.Error("generalization missing")
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d", tr.Count())
	}
}

func TestTreeAddMinimalKeepsOtherRhs(t *testing.T) {
	tr := NewTree(6)
	tr.AddMinimal(bs(6, 1, 3), 5)
	tr.AddMinimal(bs(6, 1, 3), 4)
	tr.AddMinimal(bs(6, 1), 5) // evicts {1,3}→5 but not {1,3}→4
	if !tr.Contains(bs(6, 1, 3), 4) {
		t.Error("unrelated rhs removed")
	}
	if tr.Contains(bs(6, 1, 3), 5) {
		t.Error("specialization survived")
	}
}

func TestTreeLevelAndMaxLevel(t *testing.T) {
	tr := NewTree(6)
	tr.Add(bs(6, 1), 2)
	tr.Add(bs(6, 1, 3), 4)
	tr.Add(bs(6, 0, 2, 5), 4)
	if tr.MaxLevel() != 3 {
		t.Errorf("MaxLevel = %d", tr.MaxLevel())
	}
	var level2 []string
	tr.Level(2, func(lhs, rhs *bitset.Set) {
		level2 = append(level2, lhs.String())
	})
	if len(level2) != 1 || level2[0] != "{1, 3}" {
		t.Errorf("Level(2) = %v", level2)
	}
	if NewTree(4).MaxLevel() != -1 {
		t.Error("empty tree MaxLevel should be -1")
	}
}

func TestTreeViolatedBy(t *testing.T) {
	tr := NewTree(6)
	tr.Add(bs(6, 0), 1)    // lhs ⊆ agree, rhs outside → violated
	tr.Add(bs(6, 0), 2)    // rhs inside agree → fine
	tr.Add(bs(6, 0, 3), 1) // lhs outside agree → fine
	tr.Add(bs(6, 2), 4)    // violated
	tr.Add(bs(6), 5)       // empty lhs, rhs outside → violated
	agree := bs(6, 0, 2)
	got := tr.ViolatedBy(agree)
	want := map[string]string{
		"{0}": "{1}",
		"{2}": "{4}",
		"{}":  "{5}",
	}
	if len(got) != len(want) {
		t.Fatalf("ViolatedBy returned %d FDs, want %d: %v", len(got), len(want), got)
	}
	for _, v := range got {
		if want[v.Lhs.String()] != v.Rhs.String() {
			t.Errorf("unexpected violated FD %v -> %v", v.Lhs, v.Rhs)
		}
	}
}

func TestTreeViolatedByMatchesCollect(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(6)
		tr := NewTree(n)
		for i := 0; i < 25; i++ {
			a := r.Intn(n)
			lhs := bitset.New(n)
			for e := 0; e < n; e++ {
				if e != a && r.Intn(3) == 0 {
					lhs.Add(e)
				}
			}
			tr.Add(lhs, a)
		}
		agree := bitset.New(n)
		for e := 0; e < n; e++ {
			if r.Intn(2) == 0 {
				agree.Add(e)
			}
		}
		// Reference: per-attribute CollectGeneralizations.
		type pair struct{ lhs, a string }
		want := map[pair]bool{}
		for a := 0; a < n; a++ {
			if agree.Contains(a) {
				continue
			}
			for _, lhs := range tr.CollectGeneralizations(agree, a) {
				want[pair{lhs.String(), string(rune('0' + a))}] = true
			}
		}
		got := map[pair]bool{}
		for _, v := range tr.ViolatedBy(agree) {
			v.Rhs.ForEach(func(a int) bool {
				got[pair{v.Lhs.String(), string(rune('0' + a))}] = true
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d violated pairs, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing violated pair %v", trial, k)
			}
		}
	}
}

func TestTreeRemoveRhs(t *testing.T) {
	tr := NewTree(5)
	tr.AddSet(bs(5, 1), bs(5, 2, 3, 4))
	tr.RemoveRhs(bs(5, 1), bs(5, 2, 4))
	if tr.Contains(bs(5, 1), 2) || tr.Contains(bs(5, 1), 4) {
		t.Error("RemoveRhs left removed attributes")
	}
	if !tr.Contains(bs(5, 1), 3) {
		t.Error("RemoveRhs removed an unrelated attribute")
	}
	// Removing from a non-existent path is a no-op.
	tr.RemoveRhs(bs(5, 0, 2), bs(5, 3))
}

// brute is a reference implementation holding FDs in a slice.
type brute struct {
	n   int
	fds []struct {
		lhs *bitset.Set
		a   int
	}
}

func (b *brute) addMinimal(lhs *bitset.Set, a int) bool {
	for _, f := range b.fds {
		if f.a == a && f.lhs.IsSubsetOf(lhs) {
			return false
		}
	}
	out := b.fds[:0]
	for _, f := range b.fds {
		if f.a == a && lhs.IsProperSubsetOf(f.lhs) {
			continue
		}
		out = append(out, f)
	}
	b.fds = out
	b.fds = append(b.fds, struct {
		lhs *bitset.Set
		a   int
	}{lhs.Clone(), a})
	return true
}

func (b *brute) containsGen(lhs *bitset.Set, a int) bool {
	for _, f := range b.fds {
		if f.a == a && f.lhs.IsSubsetOf(lhs) {
			return true
		}
	}
	return false
}

func TestQuickTreeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	f := func() bool {
		n := 3 + r.Intn(8)
		tr := NewTree(n)
		ref := &brute{n: n}
		for op := 0; op < 60; op++ {
			a := r.Intn(n)
			lhs := bitset.New(n)
			for e := 0; e < n; e++ {
				if e != a && r.Intn(3) == 0 {
					lhs.Add(e)
				}
			}
			switch r.Intn(3) {
			case 0:
				if tr.AddMinimal(lhs, a) != ref.addMinimal(lhs, a) {
					return false
				}
			case 1:
				if tr.ContainsGeneralization(lhs, a) != ref.containsGen(lhs, a) {
					return false
				}
			case 2:
				gens := tr.CollectGeneralizations(lhs, a)
				want := 0
				for _, fd := range ref.fds {
					if fd.a == a && fd.lhs.IsSubsetOf(lhs) {
						want++
					}
				}
				if len(gens) != want {
					return false
				}
			}
		}
		// Final structural agreement.
		if tr.Count() != len(ref.fds) {
			return false
		}
		for _, fd := range ref.fds {
			if !tr.Contains(fd.lhs, fd.a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
