package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"normalize/internal/datagen"
	"normalize/internal/fd"
)

func tinySpec() Spec {
	return Spec{
		Name:   "tiny-tpch",
		Gen:    func() (*datagen.Dataset, error) { return datagen.TPCH(0.00005, 1) },
		MaxLhs: 2,
	}
}

func TestRunTable3RowShape(t *testing.T) {
	row, err := RunTable3Row(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if row.Attrs != 52 {
		t.Errorf("attrs = %d", row.Attrs)
	}
	if row.FDs <= 0 || row.FDKeys < 0 {
		t.Errorf("FDs=%d FDKeys=%d", row.FDs, row.FDKeys)
	}
	if row.AvgRhsAfter < row.AvgRhsBefore {
		t.Errorf("closure shrank the average RHS: %f -> %f", row.AvgRhsBefore, row.AvgRhsAfter)
	}
	if row.Discovery <= 0 || row.ClosureOpt <= 0 {
		t.Error("timings missing")
	}
	var buf bytes.Buffer
	PrintTable3(&buf, []Table3Row{row})
	if !strings.Contains(buf.String(), "tiny-tpch") {
		t.Error("PrintTable3 lost the dataset name")
	}
}

func TestRunNaiveComparisonOrdering(t *testing.T) {
	row, err := RunNaiveComparison(context.Background(), tinySpec(), 1500)
	if err != nil {
		t.Fatal(err)
	}
	// The cubic baseline must not beat the optimized algorithm on a
	// non-trivial input (the paper's headline result). Timing on tiny
	// inputs jitters, so allow a generous margin; the full-size
	// comparison lives in cmd/evaluate.
	if row.Naive*3 < row.Optimized {
		t.Errorf("naive %v dramatically faster than optimized %v", row.Naive, row.Optimized)
	}
	if row.Naive <= 0 || row.Improved <= 0 || row.Optimized <= 0 {
		t.Error("missing timings")
	}
	var buf bytes.Buffer
	PrintNaive(&buf, []NaiveRow{row})
	if !strings.Contains(buf.String(), "tiny-tpch") {
		t.Error("PrintNaive lost the dataset name")
	}
}

func TestSampleFDs(t *testing.T) {
	s := fd.NewSet(4)
	s.AddAttrs([]int{0}, []int{1})
	s.AddAttrs([]int{1}, []int{2})
	s.AddAttrs([]int{2}, []int{3})
	sample := SampleFDs(s, 2, 1)
	if sample.Len() != 2 {
		t.Errorf("sample size = %d", sample.Len())
	}
	// Oversampling returns everything.
	if SampleFDs(s, 10, 1).Len() != 3 {
		t.Error("oversampling should cap at the set size")
	}
	// Samples are clones: mutating them must not touch the original.
	sample.FDs[0].Rhs.Add(3)
	count := 0
	for _, f := range s.FDs {
		count += f.Rhs.Cardinality()
	}
	if count != 3 {
		t.Error("SampleFDs did not clone")
	}
}

func TestRunReconstructionTiny(t *testing.T) {
	ds, err := datagen.TPCH(0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RunReconstruction(context.Background(), ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Mapping) != 8 {
		t.Fatalf("mapping covers %d original relations, want 8", len(rec.Mapping))
	}
	// The paper's headline effectiveness result: the snowflake
	// dimensions are substantially recovered. At this deliberately tiny
	// scale (a dozen customers) single attributes may drift between
	// neighbouring relations, so the threshold is loose here; the
	// full-scale Figure 3 run in cmd/evaluate shows perfect matches.
	byName := map[string]TableMatch{}
	for _, m := range rec.Mapping {
		byName[m.Original] = m
	}
	for _, name := range []string{"customer", "supplier", "nation", "partsupp"} {
		if byName[name].Jaccard < 0.7 {
			t.Errorf("%s reconstructed with Jaccard %.2f, want ≥ 0.7 (matched %s)",
				name, byName[name].Jaccard, byName[name].Best)
		}
	}
	var buf bytes.Buffer
	PrintReconstruction(&buf, rec)
	if !strings.Contains(buf.String(), "Perfectly recovered") {
		t.Error("PrintReconstruction output incomplete")
	}
}
