// Package eval regenerates every table and figure of the paper's
// evaluation (Section 8) on the generated datasets. It is shared by the
// cmd/evaluate binary and the repository's benchmark suite; see
// EXPERIMENTS.md for the experiment index and the paper-vs-measured
// discussion.
package eval

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"normalize/internal/bitset"
	"normalize/internal/closure"
	"normalize/internal/core"
	"normalize/internal/datagen"
	"normalize/internal/discovery/hyfd"
	"normalize/internal/fd"
	"normalize/internal/keys"
	"normalize/internal/violation"
)

// Spec names a dataset generator together with the discovery pruning it
// is evaluated under. MaxLhs = 0 reproduces the paper exactly (complete
// FD sets); TPC-H uses the Section 4.3 pruning because its scaled-down
// instance has combinatorially more coincidental FDs than the full-size
// original (see EXPERIMENTS.md).
type Spec struct {
	Name   string
	Gen    func() (*datagen.Dataset, error)
	MaxLhs int
}

// DefaultSpecs are the six datasets of Table 3.
func DefaultSpecs() []Spec {
	return []Spec{
		{Name: "Horse", Gen: func() (*datagen.Dataset, error) { return datagen.Horse(1), nil }},
		{Name: "Plista", Gen: func() (*datagen.Dataset, error) { return datagen.Plista(1), nil }},
		{Name: "Amalgam1", Gen: func() (*datagen.Dataset, error) { return datagen.Amalgam1(1), nil }},
		{Name: "Flight", Gen: func() (*datagen.Dataset, error) { return datagen.Flight(1), nil }},
		{Name: "MusicBrainz", Gen: func() (*datagen.Dataset, error) { return datagen.MusicBrainz(24, 1) }},
		{Name: "TPC-H", Gen: func() (*datagen.Dataset, error) { return datagen.TPCH(0.0005, 1) }, MaxLhs: 4},
	}
}

// SmallSpecs are the three datasets the paper's naive-closure text
// quotes (13 s / 23 min / 41 min in the original).
func SmallSpecs() []Spec {
	all := DefaultSpecs()
	return []Spec{all[2], all[0], all[1]} // Amalgam1, Horse, Plista
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Name          string
	Attrs         int
	Records       int
	FDs           int
	FDKeys        int
	Discovery     time.Duration
	ClosureImpr   time.Duration
	ClosureOpt    time.Duration
	KeyDerivation time.Duration
	ViolationID   time.Duration
	AvgRhsBefore  float64
	AvgRhsAfter   float64
}

// RunTable3Row executes the per-component measurements of Table 3 for
// one dataset: FD discovery, both closure variants, key derivation, and
// violating-FD identification (first calls, like the paper reports).
// The measured components run under ctx and the call returns ctx.Err()
// promptly when the context ends mid-experiment.
func RunTable3Row(ctx context.Context, spec Spec) (Table3Row, error) {
	ds, err := spec.Gen()
	if err != nil {
		return Table3Row{Name: spec.Name}, err
	}
	rel := ds.Denormalized
	row := Table3Row{Name: spec.Name, Attrs: rel.NumAttrs(), Records: rel.NumRows()}

	start := time.Now()
	fds, err := hyfd.DiscoverContext(ctx, rel, hyfd.Options{MaxLhs: spec.MaxLhs, Parallel: true})
	if err != nil {
		return row, err
	}
	row.Discovery = time.Since(start)
	row.FDs = fds.CountSingle()
	row.AvgRhsBefore = fds.AverageRhsSize()

	improved := fds.Clone()
	start = time.Now()
	if _, err := closure.ImprovedParallelContext(ctx, improved, 0); err != nil {
		return row, err
	}
	row.ClosureImpr = time.Since(start)

	optimized := fds.Clone()
	start = time.Now()
	if _, err := closure.OptimizedParallelContext(ctx, optimized, 0); err != nil {
		return row, err
	}
	row.ClosureOpt = time.Since(start)
	row.AvgRhsAfter = optimized.AverageRhsSize()

	all := bitset.Full(rel.NumAttrs())
	start = time.Now()
	derivedKeys := keys.Derive(optimized, all)
	row.KeyDerivation = time.Since(start)
	row.FDKeys = len(derivedKeys)

	nullAttrs := bitset.New(rel.NumAttrs())
	for c := 0; c < rel.NumAttrs(); c++ {
		if rel.HasNull(c) {
			nullAttrs.Add(c)
		}
	}
	start = time.Now()
	violation.Detect(violation.Input{
		FDs:       optimized,
		Keys:      derivedKeys,
		RelAttrs:  all,
		NullAttrs: nullAttrs,
	})
	row.ViolationID = time.Since(start)
	return row, nil
}

// PrintTable3 renders Table 3 rows in the paper's layout.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-12s %6s %8s %10s %8s %12s %12s %12s %10s %10s %8s %8s\n",
		"Name", "Attr.", "Records", "FDs", "FD-Keys", "FD Disc.",
		"Closure_impr", "Closure_opt", "Key Der.", "Viol. Iden.", "avgRhs0", "avgRhs+")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %8d %10d %8d %12s %12s %12s %10s %10s %8.1f %8.1f\n",
			r.Name, r.Attrs, r.Records, r.FDs, r.FDKeys,
			fmtDur(r.Discovery), fmtDur(r.ClosureImpr), fmtDur(r.ClosureOpt),
			fmtDur(r.KeyDerivation), fmtDur(r.ViolationID),
			r.AvgRhsBefore, r.AvgRhsAfter)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1f min", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	default:
		return fmt.Sprintf("%d ms", d.Milliseconds())
	}
}

// NaiveRow compares the three closure algorithms on one dataset — the
// paper's Section 8.2 naive-closure comparison.
type NaiveRow struct {
	Name                       string
	FDs                        int
	Naive, Improved, Optimized time.Duration
}

// RunNaiveComparison measures the naive algorithm against the improved
// and optimized ones. sampleFDs bounds the input size (0 = all FDs):
// the naive algorithm is cubic, so the paper itself stopped running it
// on the larger sets. The measured algorithms run under ctx — the
// cubic naive closure in particular is why this experiment wants to be
// cancellable.
func RunNaiveComparison(ctx context.Context, spec Spec, sampleFDs int) (NaiveRow, error) {
	ds, err := spec.Gen()
	if err != nil {
		return NaiveRow{Name: spec.Name}, err
	}
	fds, err := hyfd.DiscoverContext(ctx, ds.Denormalized, hyfd.Options{MaxLhs: spec.MaxLhs, Parallel: true})
	if err != nil {
		return NaiveRow{Name: spec.Name}, err
	}
	if sampleFDs > 0 && fds.Len() > sampleFDs {
		fds = SampleFDs(fds, sampleFDs, 1)
	}
	row := NaiveRow{Name: spec.Name, FDs: fds.CountSingle()}

	in := fds.Clone()
	start := time.Now()
	if _, err := closure.NaiveContext(ctx, in); err != nil {
		return row, err
	}
	row.Naive = time.Since(start)

	in = fds.Clone()
	start = time.Now()
	if _, err := closure.ImprovedContext(ctx, in); err != nil {
		return row, err
	}
	row.Improved = time.Since(start)

	in = fds.Clone()
	start = time.Now()
	if _, err := closure.OptimizedContext(ctx, in); err != nil {
		return row, err
	}
	row.Optimized = time.Since(start)
	return row, nil
}

// PrintNaive renders the naive-closure comparison.
func PrintNaive(w io.Writer, rows []NaiveRow) {
	fmt.Fprintf(w, "%-12s %10s %12s %12s %12s\n", "Name", "FDs(in)", "Naive", "Improved", "Optimized")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %12s %12s %12s\n",
			r.Name, r.FDs, fmtDur(r.Naive), fmtDur(r.Improved), fmtDur(r.Optimized))
	}
}

// SampleFDs draws a random subset of n aggregated FDs (cloned), keeping
// the universe — the preparation of the paper's Figure 2 experiment.
func SampleFDs(fds *fd.Set, n int, seed int64) *fd.Set {
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(fds.Len())
	if n > len(idx) {
		n = len(idx)
	}
	out := fd.NewSet(fds.NumAttrs)
	for _, i := range idx[:n] {
		out.FDs = append(out.FDs, fds.FDs[i].Clone())
	}
	return out
}

// Figure2Point is one x-position of Figure 2: closure runtimes over an
// FD-count sweep.
type Figure2Point struct {
	FDs       int
	Improved  time.Duration
	Optimized time.Duration
}

// RunFigure2 sweeps the number of input FDs (random samples from the
// MusicBrainz FD set, attributes held constant) and measures the
// improved and optimized closure algorithms, reproducing Figure 2. A
// cancelled ctx ends the sweep promptly; the points completed so far
// are returned alongside ctx.Err(), so a partial sweep is still
// reportable.
func RunFigure2(ctx context.Context, steps int) ([]Figure2Point, error) {
	ds, err := datagen.MusicBrainz(24, 1)
	if err != nil {
		return nil, err
	}
	full, err := hyfd.DiscoverContext(ctx, ds.Denormalized, hyfd.Options{Parallel: true})
	if err != nil {
		return nil, err
	}
	var points []Figure2Point
	for i := 1; i <= steps; i++ {
		n := full.Len() * i / steps
		sample := SampleFDs(full, n, int64(i))
		imp := sample.Clone()
		start := time.Now()
		if _, err := closure.ImprovedParallelContext(ctx, imp, 0); err != nil {
			return points, err
		}
		impT := time.Since(start)
		opt := sample.Clone()
		start = time.Now()
		if _, err := closure.OptimizedParallelContext(ctx, opt, 0); err != nil {
			return points, err
		}
		optT := time.Since(start)
		points = append(points, Figure2Point{FDs: sample.CountSingle(), Improved: impT, Optimized: optT})
	}
	return points, nil
}

// PrintFigure2 renders the sweep as the series of Figure 2.
func PrintFigure2(w io.Writer, points []Figure2Point) {
	fmt.Fprintf(w, "%12s %14s %14s %8s\n", "input FDs", "Improved", "Optimized", "speedup")
	for _, p := range points {
		speedup := float64(p.Improved) / float64(p.Optimized)
		fmt.Fprintf(w, "%12d %14s %14s %7.1fx\n",
			p.FDs, fmtDur(p.Improved), fmtDur(p.Optimized), speedup)
	}
}

// Reconstruction reports how a normalized schema maps onto the gold
// standard: for every original relation the best-matching produced
// table by attribute-set Jaccard similarity.
type Reconstruction struct {
	Tables  []*core.Table
	Mapping []TableMatch
	Stats   core.Stats
	// Degradations is non-empty when the run degraded to stay inside a
	// budget or survived a stage failure (see core.Degradation).
	Degradations []core.Degradation
}

// TableMatch pairs an original relation with its best reconstruction.
type TableMatch struct {
	Original string
	Best     string
	Jaccard  float64
}

// RunReconstruction normalizes a denormalized dataset and matches the
// result against the original schema (Figures 3 and 4). The pipeline
// run is cancellable through ctx. A run that stops early with a
// partial result (*core.PartialError) is still matched — the
// reconstruction of what the pipeline got done is returned alongside
// the error so the caller can report both.
func RunReconstruction(ctx context.Context, ds *datagen.Dataset, maxLhs int) (*Reconstruction, error) {
	res, runErr := core.NormalizeRelationContext(ctx, ds.Denormalized, core.Options{MaxLhs: maxLhs})
	if runErr != nil {
		var pe *core.PartialError
		if !errors.As(runErr, &pe) || res == nil {
			return nil, runErr
		}
	}
	rec := &Reconstruction{Tables: res.Tables, Stats: res.Stats, Degradations: res.Degradations}
	for _, orig := range ds.Original {
		attrs := map[string]bool{}
		for _, a := range orig.Attrs {
			attrs[a] = true
		}
		best, bestJ := "", 0.0
		for _, t := range res.Tables {
			names := t.AttrNames(t.Attrs)
			inter := 0
			for _, n := range names {
				if attrs[n] {
					inter++
				}
			}
			j := float64(inter) / float64(len(attrs)+len(names)-inter)
			if j > bestJ {
				best, bestJ = t.Name, j
			}
		}
		rec.Mapping = append(rec.Mapping, TableMatch{Original: orig.Name, Best: best, Jaccard: bestJ})
	}
	return rec, runErr
}

// PrintReconstruction renders the normalized schema and the gold-
// standard mapping.
func PrintReconstruction(w io.Writer, rec *Reconstruction) {
	if len(rec.Degradations) > 0 {
		fmt.Fprintln(w, "Run degraded:")
		fmt.Fprint(w, core.FormatDegradations(rec.Degradations))
	}
	fmt.Fprintf(w, "Normalized schema (%d tables, %d decompositions, %d FDs):\n",
		len(rec.Tables), rec.Stats.Decompositions, rec.Stats.NumFDs)
	for _, t := range rec.Tables {
		fmt.Fprintf(w, "  %s  (%d rows)\n", t, t.Data.NumRows())
		for _, fk := range t.ForeignKeys {
			fmt.Fprintf(w, "      FK (%v) -> %s\n", t.AttrNames(fk.Attrs), fk.RefTable)
		}
	}
	fmt.Fprintln(w, "\nReconstruction vs. original schema:")
	perfect := 0
	for _, m := range rec.Mapping {
		fmt.Fprintf(w, "  %-20s -> %-28s (Jaccard %.2f)\n", m.Original, m.Best, m.Jaccard)
		if m.Jaccard == 1 {
			perfect++
		}
	}
	fmt.Fprintf(w, "Perfectly recovered: %d of %d original relations\n", perfect, len(rec.Mapping))
}
