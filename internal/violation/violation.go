// Package violation implements the violating-FD identification
// component of Normalize (Section 6, Algorithm 4 of the paper). Given
// the extended FDs and the derived keys of a relation, an FD X → Y
// violates BCNF iff X is neither a key nor a superkey — efficiently
// tested as "no key is a subset of X" with a prefix tree over the keys.
//
// The detector honors the paper's constraint-preservation rules: FDs
// with null values in their left-hand side are skipped (their LHS would
// become a primary key, and SQL forbids nulls in keys), primary-key
// attributes are removed from violating right-hand sides, and FDs whose
// decomposition would tear an existing foreign key apart are skipped.
//
// A Mode selects the target normal form: BCNF (the default) or 3NF,
// which additionally drops violating FDs whose decomposition would
// split the left-hand side of another FD — the dependency-preservation
// condition the paper describes at the end of Section 6.
package violation

import (
	"normalize/internal/bitset"
	"normalize/internal/fd"
	"normalize/internal/settrie"
)

// Mode selects the normal form whose violations are reported.
type Mode int

const (
	// BCNF reports every FD whose LHS is not a (super)key.
	BCNF Mode = iota
	// ThirdNF additionally requires dependency preservation: violating
	// FDs whose decomposition would split another FD's LHS are dropped.
	ThirdNF
	// SecondNF reports only partial dependencies: FDs whose LHS is a
	// proper subset of a key and whose RHS contains non-prime
	// attributes. Eliminating exactly these yields 2NF — the weakest
	// normal form the paper's component (4) can be configured for
	// ("one could setup other normalization criteria in this
	// component").
	SecondNF
)

// Input bundles the state of one relation under normalization.
type Input struct {
	// FDs are the extended FDs scoped to the relation (lhs and rhs
	// within RelAttrs).
	FDs *fd.Set
	// Keys are the derived keys of the relation.
	Keys []*bitset.Set
	// RelAttrs are the attributes of the relation.
	RelAttrs *bitset.Set
	// NullAttrs marks attributes that contain at least one null value.
	NullAttrs *bitset.Set
	// PrimaryKey is the relation's primary key, or nil.
	PrimaryKey *bitset.Set
	// ForeignKeys are attribute sets acting as foreign keys in this
	// relation.
	ForeignKeys []*bitset.Set
	// Mode selects the target normal form (default BCNF).
	Mode Mode
}

// Detect returns the constraint-preserving violating FDs of the
// relation. Returned FDs are clones; the input set is not modified. An
// empty result means the relation conforms to the target normal form.
func Detect(in Input) []*fd.FD {
	keyTrie := &settrie.Trie{}
	for _, k := range in.Keys {
		keyTrie.Insert(k)
	}

	var out []*fd.FD
	for _, f := range in.FDs.FDs {
		if !f.Lhs.IsSubsetOf(in.RelAttrs) {
			continue
		}
		// Null check: the LHS becomes a primary key after the split.
		if in.NullAttrs != nil && f.Lhs.Intersects(in.NullAttrs) {
			continue
		}
		// Constant columns (∅ → A) are never proposed for decomposition:
		// the split-off relation would need an empty primary key, which
		// SQL cannot express — the same reasoning that skips null LHSs.
		if f.Lhs.IsEmpty() {
			continue
		}
		// BCNF test: any key that is a subset of the LHS certifies the
		// FD (Line 8 of Algorithm 4).
		if keyTrie.ContainsSubsetOf(f.Lhs) {
			continue
		}
		v := f.Clone()
		v.Rhs.IntersectWith(in.RelAttrs)
		// Preserve an existing primary key: its attributes must not be
		// pulled out of the relation (Lines 10–11).
		if in.PrimaryKey != nil {
			v.Rhs.DifferenceWith(in.PrimaryKey)
		}
		if v.Rhs.IsEmpty() {
			continue
		}
		// Preserve existing foreign keys: each must survive intact in
		// one of the two split relations (Lines 12–14). R2 = X ∪ Y
		// holds the FK iff fk ⊆ lhs ∪ rhs; R1 = R \ Y ∪ X holds it iff
		// fk ∩ rhs = ∅.
		if breaksForeignKey(in.ForeignKeys, v) {
			continue
		}
		out = append(out, v)
	}
	switch in.Mode {
	case ThirdNF:
		out = dependencyPreserving(in, out)
	case SecondNF:
		out = partialDependencies(in, out)
	}
	return out
}

// partialDependencies keeps only 2NF violations: the LHS must be a
// proper subset of some key, and the RHS is reduced to non-prime
// attributes (attributes in no key).
func partialDependencies(in Input, violating []*fd.FD) []*fd.FD {
	prime := bitset.New(in.FDs.NumAttrs)
	for _, k := range in.Keys {
		prime.UnionWith(k)
	}
	var out []*fd.FD
	for _, v := range violating {
		partial := false
		for _, k := range in.Keys {
			if v.Lhs.IsProperSubsetOf(k) {
				partial = true
				break
			}
		}
		if !partial {
			continue
		}
		v.Rhs.DifferenceWith(prime)
		if !v.Rhs.IsEmpty() {
			out = append(out, v)
		}
	}
	return out
}

func breaksForeignKey(fks []*bitset.Set, v *fd.FD) bool {
	for _, fk := range fks {
		if !fk.Intersects(v.Rhs) {
			continue // fk untouched, stays in R1
		}
		if !coveredByUnion(fk, v.Lhs, v.Rhs) {
			return true // fk neither in R1 nor in R2
		}
	}
	return false
}

// dependencyPreserving keeps only violating FDs whose decomposition
// splits no other FD's LHS: for the split by X → Y, every FD LHS V with
// V ⊆ R must fit into R1 = R \ Y ∪ X or into R2 = X ∪ Y.
func dependencyPreserving(in Input, violating []*fd.FD) []*fd.FD {
	var out []*fd.FD
	for _, v := range violating {
		r1 := in.RelAttrs.Difference(v.Rhs) // X stays: X ∩ Y = ∅
		r2 := v.Lhs.Union(v.Rhs)
		splits := false
		for _, f := range in.FDs.FDs {
			if !f.Lhs.IsSubsetOf(in.RelAttrs) || f.Lhs.IsEmpty() {
				continue
			}
			if !f.Lhs.IsSubsetOf(r1) && !f.Lhs.IsSubsetOf(r2) {
				splits = true
				break
			}
		}
		if !splits {
			out = append(out, v)
		}
	}
	return out
}

func coveredByUnion(s, a, b *bitset.Set) bool {
	ok := true
	s.ForEach(func(e int) bool {
		if !a.Contains(e) && !b.Contains(e) {
			ok = false
			return false
		}
		return true
	})
	return ok
}
