package violation

import (
	"testing"

	"normalize/internal/bitset"
	"normalize/internal/fd"
)

// Address example universe: First(0) Last(1) Postcode(2) City(3) Mayor(4).
func addressInput() Input {
	s := fd.NewSet(5)
	s.AddAttrs([]int{0, 1}, []int{2, 3, 4}) // First,Last → rest (key)
	s.AddAttrs([]int{2}, []int{3, 4})       // Postcode → City,Mayor (violates)
	return Input{
		FDs:      s,
		Keys:     []*bitset.Set{bitset.Of(5, 0, 1)},
		RelAttrs: bitset.Full(5),
	}
}

func TestAddressViolation(t *testing.T) {
	got := Detect(addressInput())
	if len(got) != 1 {
		t.Fatalf("got %d violations, want 1", len(got))
	}
	if !got[0].Lhs.Equal(bitset.Of(5, 2)) || !got[0].Rhs.Equal(bitset.Of(5, 3, 4)) {
		t.Errorf("violation = %v", got[0])
	}
}

func TestSuperkeyLhsNotViolating(t *testing.T) {
	in := addressInput()
	// Add an FD whose LHS is a superkey: must not be reported.
	in.FDs.AddAttrs([]int{0, 1, 3}, []int{2, 4})
	got := Detect(in)
	for _, v := range got {
		if v.Lhs.Cardinality() == 3 {
			t.Error("superkey LHS reported as violation")
		}
	}
}

func TestBCNFConformRelation(t *testing.T) {
	s := fd.NewSet(3)
	s.AddAttrs([]int{0}, []int{1, 2})
	in := Input{FDs: s, Keys: []*bitset.Set{bitset.Of(3, 0)}, RelAttrs: bitset.Full(3)}
	if got := Detect(in); len(got) != 0 {
		t.Errorf("conform relation reported %d violations", len(got))
	}
}

func TestNullLhsSkipped(t *testing.T) {
	in := addressInput()
	in.NullAttrs = bitset.Of(5, 2) // Postcode has nulls
	if got := Detect(in); len(got) != 0 {
		t.Error("FD with null LHS must be skipped")
	}
}

func TestPrimaryKeyAttributesProtected(t *testing.T) {
	in := addressInput()
	// Primary key {First, Last, City}: City must be removed from the
	// violating FD's RHS.
	in.PrimaryKey = bitset.Of(5, 0, 1, 3)
	got := Detect(in)
	if len(got) != 1 {
		t.Fatalf("got %d violations", len(got))
	}
	if got[0].Rhs.Contains(3) {
		t.Error("primary key attribute left in violating RHS")
	}
	if !got[0].Rhs.Contains(4) {
		t.Error("non-key RHS attribute lost")
	}
	// Input set must not have been mutated.
	if !in.FDs.FDs[1].Rhs.Contains(3) {
		t.Error("Detect mutated its input")
	}
}

func TestFullyProtectedRhsDropped(t *testing.T) {
	in := addressInput()
	in.PrimaryKey = bitset.Of(5, 0, 1, 3, 4) // covers the whole RHS
	if got := Detect(in); len(got) != 0 {
		t.Error("violation with empty effective RHS must be dropped")
	}
}

func TestForeignKeyPreservation(t *testing.T) {
	in := addressInput()
	// FK {City, First}: the split by Postcode→City,Mayor moves City to
	// R2 but First stays in R1 only — FK torn apart, FD must be skipped.
	in.ForeignKeys = []*bitset.Set{bitset.Of(5, 0, 3)}
	if got := Detect(in); len(got) != 0 {
		t.Errorf("FK-breaking FD not skipped: %v", got)
	}
	// FK {City, Mayor} fits entirely into R2 = {Postcode, City, Mayor}:
	// the FD is fine.
	in.ForeignKeys = []*bitset.Set{bitset.Of(5, 3, 4)}
	if got := Detect(in); len(got) != 1 {
		t.Error("FK inside R2 must not block the FD")
	}
	// FK {First, Last} is untouched by the split (stays in R1).
	in.ForeignKeys = []*bitset.Set{bitset.Of(5, 0, 1)}
	if got := Detect(in); len(got) != 1 {
		t.Error("FK disjoint from RHS must not block the FD")
	}
}

func TestScopedToRelation(t *testing.T) {
	in := addressInput()
	// Restrict the relation to {First, Last, Postcode}: the violating
	// FD Postcode→City,Mayor points outside and must be ignored.
	in.RelAttrs = bitset.Of(5, 0, 1, 2)
	in.Keys = []*bitset.Set{bitset.Of(5, 0, 1)}
	if got := Detect(in); len(got) != 0 {
		t.Errorf("out-of-relation FD reported: %v", got)
	}
}

func TestEmptyLhsSkipped(t *testing.T) {
	// A constant column yields ∅→A; it must never be proposed for
	// decomposition (its table would need an empty primary key).
	s := fd.NewSet(3)
	s.AddAttrs(nil, []int{2})
	s.AddAttrs([]int{0}, []int{1})
	in := Input{
		FDs:      s,
		Keys:     []*bitset.Set{bitset.Of(3, 0, 1)},
		RelAttrs: bitset.Full(3),
	}
	got := Detect(in)
	for _, v := range got {
		if v.Lhs.IsEmpty() {
			t.Error("empty-LHS FD reported as violation")
		}
	}
	if len(got) != 1 {
		t.Errorf("got %d violations, want 1 (only {0}→{1})", len(got))
	}
}

func TestSecondNFOnlyPartialDependencies(t *testing.T) {
	// Universe: OrderID(0) ProductID(1) Qty(2) ProductName(3) Supplier(4).
	// Key: {OrderID, ProductID}. ProductID→ProductName,Supplier is a
	// partial dependency (LHS ⊂ key, RHS non-prime) — a 2NF violation.
	// Supplier→... with LHS outside the key is a BCNF violation but NOT
	// a 2NF violation.
	s := fd.NewSet(5)
	s.AddAttrs([]int{0, 1}, []int{2, 3, 4})
	s.AddAttrs([]int{1}, []int{3, 4})
	s.AddAttrs([]int{4}, []int{3})
	in := Input{
		FDs:      s,
		Keys:     []*bitset.Set{bitset.Of(5, 0, 1)},
		RelAttrs: bitset.Full(5),
		Mode:     SecondNF,
	}
	got := Detect(in)
	if len(got) != 1 {
		t.Fatalf("2NF violations = %d, want 1: %v", len(got), got)
	}
	if !got[0].Lhs.Equal(bitset.Of(5, 1)) {
		t.Errorf("2NF violation = %v, want ProductID partial dependency", got[0])
	}
	if got[0].Rhs.Contains(0) || got[0].Rhs.Contains(1) {
		t.Error("prime attributes must be removed from the 2NF violation RHS")
	}
	// BCNF mode reports both.
	in.Mode = BCNF
	if got := Detect(in); len(got) != 2 {
		t.Errorf("BCNF violations = %d, want 2", len(got))
	}
}

func TestThirdNFDropsLhsSplitters(t *testing.T) {
	// Universe: A(0) B(1) C(2) D(3). Keys: {A}.
	// FD1: B→C (violates). FD2: C,D→... with LHS {C,D}: the split by
	// B→C yields R1={A,B,D}, R2={B,C}; LHS {2,3} fits in neither.
	s := fd.NewSet(4)
	s.AddAttrs([]int{0}, []int{1, 2, 3})
	s.AddAttrs([]int{1}, []int{2})
	s.AddAttrs([]int{2, 3}, []int{1})
	in := Input{
		FDs:      s,
		Keys:     []*bitset.Set{bitset.Of(4, 0)},
		RelAttrs: bitset.Full(4),
	}
	bcnf := Detect(in)
	if len(bcnf) != 2 {
		t.Fatalf("BCNF violations = %d, want 2", len(bcnf))
	}
	in.Mode = ThirdNF
	tnf := Detect(in)
	for _, v := range tnf {
		if v.Lhs.Equal(bitset.Of(4, 1)) {
			t.Error("3NF kept the FD that splits {C,D}")
		}
	}
	if len(tnf) != 1 {
		t.Errorf("3NF violations = %d, want 1", len(tnf))
	}
}
