package normalize

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// outOfCoreCSV builds a redundant denormalized CSV — many rows over
// small per-column value pools with long values, so the raw bytes dwarf
// the encoded substrate. The shape makes an honest out-of-core case:
// the CSV cannot be held in memory under the test budget, but the
// dictionary-encoded result can.
func outOfCoreCSV(rows int) []byte {
	var buf bytes.Buffer
	buf.WriteString("warehouse,district,customer_class,carrier,item_group,stock_level\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&buf, "warehouse-location-%03d,district-zone-%03d,customer-class-%03d,carrier-route-%03d,item-group-%03d,stock-level-%03d\n",
			i%37, i%23, i%11, (i*5)%7, i%5, i%3)
	}
	return buf.Bytes()
}

// TestOutOfCoreIngest is the spill smoke test: a CSV more than twice
// the memory budget must still load — by spilling encoded code blocks
// to disk, not by sampling and not by failing — and normalize to the
// byte-identical DDL the unconstrained in-memory path produces.
func TestOutOfCoreIngest(t *testing.T) {
	const budgetBytes = 768 << 10
	data := outOfCoreCSV(15500)
	if len(data) < 2*budgetBytes {
		t.Fatalf("test input too small: %d bytes, want >= %d (2x budget)", len(data), 2*budgetBytes)
	}

	// Reference: the legacy whole-stream reader with no budget at all.
	legacy, err := ReadCSV("outofcore", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	legacy.Columnarize()

	var spills, rows atomic.Int64
	spillDir := t.TempDir()
	rel, skipped, err := IngestCSV(context.Background(), "outofcore", bytes.NewReader(data), IngestOptions{
		MaxMemoryBytes: budgetBytes,
		ChunkBytes:     32 << 10,
		Workers:        1,
		SpillDir:       spillDir,
		Observer: FuncObserver{
			OnCounter: func(stage Stage, name string, delta int64) {
				switch name {
				case CounterSpillEvents:
					spills.Add(delta)
				case CounterIngestRows:
					rows.Add(delta)
				}
			},
		},
	})
	if err != nil {
		t.Fatalf("constrained ingest failed (CSV %d bytes, budget %d): %v", len(data), budgetBytes, err)
	}
	if len(skipped) != 0 {
		t.Fatalf("constrained ingest skipped %d rows of well-formed input", len(skipped))
	}
	if got := spills.Load(); got == 0 {
		t.Fatalf("no spill events: a %d-byte CSV under a %d-byte budget must spill, not fit", len(data), budgetBytes)
	}
	if got, want := rows.Load(), int64(15500); got != want {
		t.Fatalf("ingest_rows = %d, want %d", got, want)
	}
	// The spill file is transient: gone once the load completes.
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("spill file left behind: %s", filepath.Join(spillDir, e.Name()))
	}

	// The substrate must be identical to the in-memory one, column for
	// column, code for code.
	if !reflect.DeepEqual(legacy.Encode(), rel.Encode()) {
		t.Fatal("spilled substrate differs from the in-memory encoding")
	}

	// And the full pipeline over it must emit the byte-identical DDL,
	// with nothing degraded along the way.
	want, err := Normalize(legacy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NormalizeContext(context.Background(), rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Degradations) != 0 {
		t.Fatalf("out-of-core run degraded: %s", FormatDegradations(got.Degradations))
	}
	if w, g := DDL(want.Tables), DDL(got.Tables); w != g {
		t.Fatalf("DDL mismatch between in-memory and out-of-core runs:\n--- in-memory ---\n%s\n--- out-of-core ---\n%s", w, g)
	}
}

// TestOutOfCoreDiscovery pins the tentpole of the compressed PLI
// store: TPC-H discovery under a memory budget smaller than the
// resident PLI footprint must complete exactly — spilling and
// reloading cold partitions, never degrading (no max-lhs tightening,
// no row sampling) — and emit DDL byte-identical to the unconstrained
// run at every worker count. The lineitem relation is the PLI-heavy
// shape the store exists for: thousands of rows over 16 attributes,
// so partitions dominate the run's memory, not the FD cover.
func TestOutOfCoreDiscovery(t *testing.T) {
	// The window is hand-tuned like TestOutOfCoreIngest's: wide enough
	// for the run's non-evictable state (FD cover, materialized
	// decompositions, encoded substrate), narrow enough that the
	// partitions cannot all stay resident alongside it — the store-wide
	// resident PLI footprint is ~7.1 MB, measured by the
	// pli_resident_bytes counter and asserted below.
	const budgetBytes = 5 << 20

	ds, err := GenerateTPCH(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Original[7] // lineitem
	rel.Columnarize()

	want, err := Normalize(rel, Options{MaxLhs: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantDDL := DDL(want.Tables)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			var spills, recomputes, reloads, compressed, resident atomic.Int64
			spillDir := t.TempDir()
			got, err := NormalizeContext(context.Background(), rel, Options{
				MaxLhs:   3,
				Workers:  workers,
				SpillDir: spillDir,
				Budget:   Budget{MaxMemoryBytes: budgetBytes},
				Observer: FuncObserver{
					OnCounter: func(stage Stage, name string, delta int64) {
						switch name {
						case CounterPLISpillEvents:
							spills.Add(delta)
						case CounterPLIRecomputes:
							recomputes.Add(delta)
						case CounterPLIReloads:
							reloads.Add(delta)
						case CounterPLICompressedBytes:
							compressed.Add(delta)
						case CounterPLIResidentBytes:
							resident.Add(delta)
						}
					},
				},
			})
			if err != nil {
				t.Fatalf("constrained discovery failed under a %d-byte budget: %v", budgetBytes, err)
			}
			if len(got.Degradations) != 0 {
				t.Fatalf("constrained discovery degraded instead of spilling: %s", FormatDegradations(got.Degradations))
			}
			if r := resident.Load(); r <= budgetBytes {
				t.Fatalf("resident PLI footprint %d ≤ budget %d: the test no longer exercises an out-of-core working set", r, budgetBytes)
			}
			if spills.Load() == 0 && recomputes.Load() == 0 {
				t.Fatalf("neither spills nor recomputes under a %d-byte budget: the ceiling never bound the PLI working set (compressed %d bytes)",
					budgetBytes, compressed.Load())
			}
			if compressed.Load() == 0 {
				t.Fatal("pli_compressed_bytes = 0: the store was never engaged")
			}
			if g := DDL(got.Tables); g != wantDDL {
				t.Fatalf("DDL mismatch between unconstrained and out-of-core discovery:\n--- unconstrained ---\n%s\n--- out-of-core ---\n%s", wantDDL, g)
			}
			// The spill file is transient: gone once the run completes.
			ents, err := os.ReadDir(spillDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				t.Errorf("spill file left behind: %s", filepath.Join(spillDir, e.Name()))
			}
			t.Logf("budget %d: compressed=%dB resident=%dB spills=%d reloads=%d recomputes=%d",
				budgetBytes, compressed.Load(), resident.Load(), spills.Load(), reloads.Load(), recomputes.Load())
		})
	}
}
