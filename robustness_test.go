package normalize

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestPublicAPIBudgetAndPartialError exercises the degradation contract
// through the public surface: a tiny FD budget forces a partial result
// whose error unwraps to the typed forms.
func TestPublicAPIBudgetAndPartialError(t *testing.T) {
	// An id column plus correlated attributes: even heavily sampled,
	// discovery retains more than one FD, so a one-FD budget exhausts
	// the whole degradation ladder.
	rows := make([][]string, 40)
	for i := range rows {
		rows[i] = []string{
			"id" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			"g" + string(rune('a'+i%5)),
			"n" + string(rune('a'+i%5)),
			"c" + string(rune('a'+i%3)),
		}
	}
	rel, err := NewRelation("r", []string{"id", "grp", "grpname", "cat"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Normalize(rel, Options{Budget: Budget{MaxFDs: 1}})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PartialError", err, err)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("no partial result through the public API")
	}
	if len(res.Degradations) == 0 {
		t.Fatal("no degradation report")
	}
	report := FormatDegradations(res.Degradations)
	if !strings.Contains(report, "degraded") {
		t.Errorf("FormatDegradations output unexpected: %q", report)
	}
}

// TestPublicAPITimeout checks Options.Timeout end to end: the deadline
// error surfaces via errors.Is and the result is still usable.
func TestPublicAPITimeout(t *testing.T) {
	ds := GeneratePlista(1)
	res, err := NormalizeContext(context.Background(), ds.Denormalized,
		Options{Timeout: 50 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("timed-out run lost its partial result")
	}
}

// TestPublicAPILenientCSV drives ReadCSVLenient through the package
// front door.
func TestPublicAPILenientCSV(t *testing.T) {
	in := "\xef\xbb\xbfa,b\n1,2\nragged\n3,4\n"
	rel, skipped, err := ReadCSVLenient("r", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 || rel.Attrs[0] != "a" {
		t.Errorf("lenient parse wrong: attrs=%v rows=%d", rel.Attrs, rel.NumRows())
	}
	if len(skipped) != 1 || skipped[0].Line != 3 {
		t.Errorf("skipped = %v, want one entry at line 3", skipped)
	}
}

// TestPublicAPIMetricsPublisher wires a MetricsPublisher as the run's
// observer and checks the rendered JSON mentions the stages that ran.
func TestPublicAPIMetricsPublisher(t *testing.T) {
	rel, err := NewRelation("r",
		[]string{"a", "b"},
		[][]string{{"1", "x"}, {"2", "x"}, {"3", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	var pub MetricsPublisher
	if _, err := Normalize(rel, Options{Observer: &pub}); err != nil {
		t.Fatal(err)
	}
	out := pub.String()
	if !strings.Contains(out, string(StageDiscovery)) {
		t.Errorf("publisher JSON missing discovery stage: %s", out)
	}
}
