// Evaluate regenerates the tables and figures of the paper's evaluation
// (Section 8) on the generated datasets:
//
//	evaluate -exp table3       # Table 3: per-component runtimes
//	evaluate -exp naive        # §8.2: naive vs improved vs optimized closure
//	evaluate -exp figure2      # Figure 2: closure runtime vs #input FDs
//	evaluate -exp figure3      # Figure 3: TPC-H schema reconstruction
//	evaluate -exp figure4      # Figure 4: MusicBrainz schema reconstruction
//	evaluate -exp conformance  # §8.3: BCNF conformance + lossless joins
//	evaluate -exp all
//
// See EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"normalize/internal/core"
	"normalize/internal/datagen"
	"normalize/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3|naive|figure2|figure3|figure4|conformance|all")
	naiveSample := flag.Int("naive-sample", 3000, "FD sample size for the cubic naive closure (0 = all FDs)")
	figure2Steps := flag.Int("figure2-steps", 6, "number of x-positions in the Figure 2 sweep")
	flag.Parse()

	run := func(name string, f func()) {
		if *exp == name || *exp == "all" {
			fmt.Printf("=== %s ===\n", name)
			f()
			fmt.Println()
		}
	}

	run("table3", func() {
		var rows []eval.Table3Row
		for _, spec := range eval.DefaultSpecs() {
			fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
			rows = append(rows, eval.RunTable3Row(spec))
		}
		eval.PrintTable3(os.Stdout, rows)
	})

	run("naive", func() {
		var rows []eval.NaiveRow
		for _, spec := range eval.SmallSpecs() {
			fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
			rows = append(rows, eval.RunNaiveComparison(spec, *naiveSample))
		}
		eval.PrintNaive(os.Stdout, rows)
	})

	run("figure2", func() {
		eval.PrintFigure2(os.Stdout, eval.RunFigure2(*figure2Steps))
	})

	run("figure3", func() {
		rec, err := eval.RunReconstruction(datagen.TPCH(0.0005, 1), 3)
		if err != nil {
			log.Fatal(err)
		}
		eval.PrintReconstruction(os.Stdout, rec)
	})

	run("figure4", func() {
		rec, err := eval.RunReconstruction(datagen.MusicBrainz(24, 1), 3)
		if err != nil {
			log.Fatal(err)
		}
		eval.PrintReconstruction(os.Stdout, rec)
	})

	run("conformance", func() {
		specs := []struct {
			name   string
			ds     *datagen.Dataset
			maxLhs int // 0 = unpruned; verification applies the same bound
		}{
			{"TPC-H", datagen.TPCH(0.0002, 1), 3},
			{"MusicBrainz", datagen.MusicBrainz(12, 1), 0},
			{"Horse", datagen.Horse(1), 0},
		}
		for _, s := range specs {
			res, err := core.NormalizeRelation(s.ds.Denormalized, core.Options{MaxLhs: s.maxLhs})
			if err != nil {
				log.Fatal(err)
			}
			bad := 0
			for _, t := range res.Tables {
				if err := core.VerifyNormalFormMax(t, s.maxLhs); err != nil {
					fmt.Printf("  %s: %v\n", s.name, err)
					bad++
				}
			}
			pruned := "complete FDs"
			if s.maxLhs > 0 {
				pruned = fmt.Sprintf("FDs with |lhs| <= %d", s.maxLhs)
			}
			fmt.Printf("%-12s %2d tables, %d decompositions, BCNF violations: %d (%s)\n",
				s.name, len(res.Tables), res.Stats.Decompositions, bad, pruned)
		}
	})
}
