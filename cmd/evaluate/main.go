// Evaluate regenerates the tables and figures of the paper's evaluation
// (Section 8) on the generated datasets:
//
//	evaluate -exp table3       # Table 3: per-component runtimes
//	evaluate -exp naive        # §8.2: naive vs improved vs optimized closure
//	evaluate -exp figure2      # Figure 2: closure runtime vs #input FDs
//	evaluate -exp figure3      # Figure 3: TPC-H schema reconstruction
//	evaluate -exp figure4      # Figure 4: MusicBrainz schema reconstruction
//	evaluate -exp conformance  # §8.3: BCNF conformance + lossless joins
//	evaluate -exp all
//
// Ctrl-C cancels the running experiment gracefully: completed rows and
// sweep points are printed before the process exits with status 130.
//
// See EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"normalize/internal/core"
	"normalize/internal/datagen"
	"normalize/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3|naive|figure2|figure3|figure4|conformance|all")
	naiveSample := flag.Int("naive-sample", 3000, "FD sample size for the cubic naive closure (0 = all FDs)")
	figure2Steps := flag.Int("figure2-steps", 6, "number of x-positions in the Figure 2 sweep")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	interrupted := false
	partial := false
	run := func(name string, f func() error) {
		if interrupted || (*exp != name && *exp != "all") {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		err := f()
		fmt.Println()
		var pe *core.PartialError
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "interrupted; partial results above")
			interrupted = true
		case errors.As(err, &pe):
			// A budget trip or isolated stage failure inside one
			// experiment: its partial results are printed above; finish
			// the remaining experiments and exit with the distinct
			// partial-result status.
			fmt.Fprintf(os.Stderr, "%s produced a partial result: %v\n", name, err)
			partial = true
		case err != nil:
			log.Fatal(err)
		}
	}
	defer func() {
		if partial {
			os.Exit(3)
		}
	}()

	run("table3", func() error {
		var rows []eval.Table3Row
		var err error
		for _, spec := range eval.DefaultSpecs() {
			fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
			var row eval.Table3Row
			if row, err = eval.RunTable3Row(ctx, spec); err != nil {
				break
			}
			rows = append(rows, row)
		}
		eval.PrintTable3(os.Stdout, rows)
		return err
	})

	run("naive", func() error {
		var rows []eval.NaiveRow
		var err error
		for _, spec := range eval.SmallSpecs() {
			fmt.Fprintf(os.Stderr, "running %s...\n", spec.Name)
			var row eval.NaiveRow
			if row, err = eval.RunNaiveComparison(ctx, spec, *naiveSample); err != nil {
				break
			}
			rows = append(rows, row)
		}
		eval.PrintNaive(os.Stdout, rows)
		return err
	})

	run("figure2", func() error {
		points, err := eval.RunFigure2(ctx, *figure2Steps)
		eval.PrintFigure2(os.Stdout, points)
		return err
	})

	run("figure3", func() error {
		ds, err := datagen.TPCH(0.0005, 1)
		if err != nil {
			return err
		}
		rec, err := eval.RunReconstruction(ctx, ds, 3)
		if rec != nil {
			eval.PrintReconstruction(os.Stdout, rec)
		}
		return err
	})

	run("figure4", func() error {
		ds, err := datagen.MusicBrainz(24, 1)
		if err != nil {
			return err
		}
		rec, err := eval.RunReconstruction(ctx, ds, 3)
		if rec != nil {
			eval.PrintReconstruction(os.Stdout, rec)
		}
		return err
	})

	run("conformance", func() error {
		tpch, err := datagen.TPCH(0.0002, 1)
		if err != nil {
			return err
		}
		mb, err := datagen.MusicBrainz(12, 1)
		if err != nil {
			return err
		}
		specs := []struct {
			name   string
			ds     *datagen.Dataset
			maxLhs int // 0 = unpruned; verification applies the same bound
		}{
			{"TPC-H", tpch, 3},
			{"MusicBrainz", mb, 0},
			{"Horse", datagen.Horse(1), 0},
		}
		for _, s := range specs {
			res, err := core.NormalizeRelationContext(ctx, s.ds.Denormalized, core.Options{MaxLhs: s.maxLhs})
			if err != nil {
				return err
			}
			bad := 0
			for _, t := range res.Tables {
				if err := core.VerifyNormalFormMax(t, s.maxLhs); err != nil {
					fmt.Printf("  %s: %v\n", s.name, err)
					bad++
				}
			}
			pruned := "complete FDs"
			if s.maxLhs > 0 {
				pruned = fmt.Sprintf("FDs with |lhs| <= %d", s.maxLhs)
			}
			fmt.Printf("%-12s %2d tables, %d decompositions, BCNF violations: %d (%s)\n",
				s.name, len(res.Tables), res.Stats.Decompositions, bad, pruned)
		}
		return nil
	})

	if interrupted {
		stop()
		os.Exit(130)
	}
}
