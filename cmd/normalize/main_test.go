package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"normalize"
)

// writeCSV drops a small denormalized address relation (the paper's
// Figure 2 shape: Postcode -> City, Mayor) into dir and returns its
// path.
func writeCSV(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "address.csv")
	data := "First,Last,Postcode,City,Mayor\n" +
		"Thomas,Miller,14482,Potsdam,Jakobs\n" +
		"Sarah,Miller,14482,Potsdam,Jakobs\n" +
		"Peter,Smith,60329,Frankfurt,Feldmann\n" +
		"Jasmine,Cone,01069,Dresden,Orosz\n" +
		"Mike,Cone,14482,Potsdam,Jakobs\n" +
		"Thomas,Moore,60329,Frankfurt,Feldmann\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeFlightCSV materializes the widest generated dataset (109
// attributes) so a tiny -timeout reliably trips mid-discovery.
func writeFlightCSV(t *testing.T, dir string) string {
	t.Helper()
	ds := normalize.GenerateFlight(1)
	path := filepath.Join(dir, "flight.csv")
	if err := ds.Denormalized.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodeSuccess pins exit 0: a completed run prints the DDL.
func TestExitCodeSuccess(t *testing.T) {
	csv := writeCSV(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-maxlhs", "3", csv}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitOK, stderr.String())
	}
	if !strings.Contains(stdout.String(), "CREATE TABLE") {
		t.Errorf("stdout missing DDL:\n%s", stdout.String())
	}
}

// TestExitCodePartial pins exit 3: a timeout mid-run still writes the
// salvaged partial schema and its degradation report.
func TestExitCodePartial(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a wide dataset")
	}
	csv := writeFlightCSV(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-timeout", "1ns", "-maxlhs", "3", csv}, &stdout, &stderr)
	if code != exitPartial {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitPartial, stderr.String())
	}
	if !strings.Contains(stdout.String(), "CREATE TABLE") {
		t.Errorf("partial run wrote no schema:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "partial result") {
		t.Errorf("stderr does not report the partial stop:\n%s", stderr.String())
	}
}

// TestExitCodeInterrupt pins exit 130: cancellation (the signal
// context main wires to SIGINT/SIGTERM) reports telemetry and exits
// with the shell's 128+SIGINT convention.
func TestExitCodeInterrupt(t *testing.T) {
	csv := writeCSV(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal arrived before the run
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{csv}, &stdout, &stderr)
	if code != exitInterrupt {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitInterrupt, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interrupt:\n%s", stderr.String())
	}
}

// TestExitCodeFatal pins exit 1 for the hard-failure family.
func TestExitCodeFatal(t *testing.T) {
	csv := writeCSV(t, t.TempDir())
	cases := []struct {
		name string
		args []string
	}{
		{"no inputs", nil},
		{"missing file", []string{"no-such-file.csv"}},
		{"bad mode", []string{"-mode", "6nf", csv}},
		{"bad algo", []string{"-algo", "magic", csv}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), tc.args, &stdout, &stderr); code != exitFatal {
				t.Errorf("exit = %d, want %d; stderr: %s", code, exitFatal, stderr.String())
			}
		})
	}
}
