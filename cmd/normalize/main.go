// Normalize is the command-line front end of the normalization library:
// it reads CSV relations, normalizes them into BCNF (or 3NF), and
// writes the resulting schema as SQL DDL plus one CSV per decomposed
// table.
//
//	normalize [-mode bcnf|3nf|2nf] [-algo hyfd|tane|dfd] [-maxlhs N]
//	          [-out DIR] [-dot] [-interactive] file.csv...
//
// Without -out the schema and DDL are printed to stdout only. With
// -interactive the ranked decomposition candidates are presented on
// every split and read from stdin (the paper's semi-automatic mode).
//
// Ctrl-C cancels a running normalization gracefully: the process
// prints the per-stage telemetry collected so far (interrupted stages
// marked) and exits with status 130. -telemetry prints the same
// per-stage summary after successful runs too, and -trace streams
// every pipeline event to stderr as it happens.
//
// -timeout bounds the run's wall-clock time and -max-rows, -max-fds,
// and -max-memory bound its resources; when a ceiling trips, the
// pipeline degrades (sampling, pruning, early stop) instead of failing
// and the degradation report is printed. A run that stopped early but
// produced a usable partial schema exits with status 3 — distinct from
// both hard failure (1) and Ctrl-C (130) — after writing that partial
// schema normally. -lenient loads malformed CSV by skipping bad rows
// (reported on stderr) instead of aborting.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"

	"normalize"
)

// Exit-code contract. Scripts and the server's process supervisors
// depend on these values; the run tests pin them.
const (
	// exitOK: the run completed and the full schema was written.
	exitOK = 0
	// exitFatal: hard failure — bad flags, unreadable input, or a
	// pipeline error with no usable result.
	exitFatal = 1
	// exitPartial: the run stopped early (timeout, budget trip, or an
	// isolated stage crash) but produced a usable lossless partial
	// schema, which was written normally before exiting.
	exitPartial = 3
	// exitInterrupt: cancelled by SIGINT/SIGTERM (128+SIGINT, the shell
	// convention); partial stage telemetry is printed before exiting.
	exitInterrupt = 130
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global machinery: flags come from
// args, output goes to the supplied writers, cancellation arrives via
// ctx, and the exit status is the return value. Tests drive it
// directly to pin the exit-code contract.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fail := func(format string, v ...any) int {
		fmt.Fprintf(stderr, "normalize: "+format+"\n", v...)
		return exitFatal
	}

	fs := flag.NewFlagSet("normalize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "bcnf", "target normal form: bcnf, 3nf, or 2nf")
	algo := fs.String("algo", "hyfd", "FD discovery algorithm: hyfd, tane, or dfd")
	maxLhs := fs.Int("maxlhs", 0, "prune FDs with left-hand sides larger than this (0 = unbounded)")
	workers := fs.Int("workers", 0, "worker goroutines for the work-stealing validation pool, pair sampling, dictionary encoding, and closure (0 = all CPUs, 1 = serial; results are identical at every count)")
	out := fs.String("out", "", "directory for DDL and decomposed CSV files")
	dot := fs.Bool("dot", false, "print the schema as a Graphviz digraph instead of DDL")
	asJSON := fs.Bool("json", false, "print the schema as JSON instead of DDL")
	interactive := fs.Bool("interactive", false, "choose decompositions and keys interactively")
	telemetry := fs.Bool("telemetry", false, "print per-stage telemetry after the run")
	trace := fs.Bool("trace", false, "stream pipeline events to stderr as they happen")
	timeout := fs.Duration("timeout", 0, "bound the run's wall-clock time (0 = none); an expired run keeps its partial result")
	maxRows := fs.Int("max-rows", 0, "operate on at most this many rows, sampling deterministically (0 = all)")
	maxFDs := fs.Int("max-fds", 0, "cap the FD candidates discovery may retain (0 = unlimited)")
	maxMemory := fs.Int64("max-memory", 0, "approximate memory ceiling in bytes for retained state (0 = unlimited)")
	lenient := fs.Bool("lenient", false, "skip malformed CSV rows instead of aborting")
	saveResult := fs.String("save-result", "", "write the full machine-readable result (schema, FD cover, scoring facts) to this file for later -append-to runs")
	appendTo := fs.String("append-to", "", "incremental append: re-normalize base.csv plus delta.csv reusing the prior result saved at this path")
	if err := fs.Parse(args); err != nil {
		return exitFatal
	}
	if fs.NArg() == 0 {
		return fail("usage: normalize [flags] file.csv...")
	}
	if *appendTo != "" {
		// The incremental path replays the saved run's FD cover against
		// only the appended rows; anything that would change what the
		// parent cover means — a different discovery algorithm, lenient
		// row-dropping, budget-driven resampling — voids the guarantee,
		// so fail fast rather than let the run reject it later.
		switch {
		case fs.NArg() != 2:
			return fail("usage: normalize -append-to result.bin [flags] base.csv delta.csv")
		case *algo != "hyfd":
			return fail("-append-to requires -algo hyfd (the saved cover seeds incremental validation)")
		case *lenient:
			return fail("-append-to cannot combine with -lenient")
		case *interactive:
			return fail("-append-to cannot combine with -interactive")
		case *maxRows != 0 || *maxFDs != 0 || *maxMemory != 0:
			return fail("-append-to cannot combine with resource budgets")
		}
	}

	rec := normalize.NewRecordingObserver()
	var observer normalize.Observer = rec
	if *trace {
		observer = normalize.MultiObserver{rec, normalize.NewLoggingObserver(stderr)}
	}

	opts := normalize.Options{
		MaxLhs:   *maxLhs,
		Workers:  *workers,
		Observer: observer,
		Timeout:  *timeout,
		Budget: normalize.Budget{
			MaxRows:        *maxRows,
			MaxFDs:         *maxFDs,
			MaxMemoryBytes: *maxMemory,
		},
	}
	var err error
	if opts.Mode, err = normalize.ParseMode(*mode); err != nil {
		return fail("%v", err)
	}
	switch *algo {
	case "hyfd":
	case "tane":
		opts.Discover = func(rel *normalize.Relation) *normalize.FDSet {
			return normalize.DiscoverFDs(rel, normalize.TANE, *maxLhs)
		}
	case "dfd":
		opts.Discover = func(rel *normalize.Relation) *normalize.FDSet {
			return normalize.DiscoverFDs(rel, normalize.DFD, *maxLhs)
		}
	default:
		return fail("unknown algorithm %q", *algo)
	}
	if *interactive {
		opts.Decider = consoleDecider(stderr)
	}

	// Inputs stream straight into the pipeline's columnar substrate:
	// chunked reads, parallel tokenization, dictionary encoding on the
	// fly — the raw CSV never sits in memory, and -max-memory governs
	// the read path's working set (spilling code blocks to disk under
	// pressure) just as it governs the pipeline's retained state.
	iopts := normalize.IngestOptions{
		Lenient:        *lenient,
		Workers:        *workers,
		MaxMemoryBytes: *maxMemory,
		Observer:       observer,
	}
	inputs := fs.Args()
	if *appendTo != "" {
		inputs = inputs[:1] // the delta file is parsed below, not pipeline-ingested
	}
	var rels []*normalize.Relation
	for _, path := range inputs {
		rel, skipped, err := normalize.IngestCSVFile(ctx, path, iopts)
		for _, re := range skipped {
			fmt.Fprintf(stderr, "normalize: %s: skipped %v\n", path, re)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// Ctrl-C during the load: same contract as a cancelled
				// pipeline run.
				fmt.Fprintln(stderr, "normalize: interrupted while reading input")
				return exitInterrupt
			}
			return fail("read %s: %v", path, err)
		}
		rels = append(rels, rel)
	}

	var res *normalize.Result
	var dstats *normalize.DeltaStats
	if *appendTo != "" {
		data, rerr := os.ReadFile(*appendTo)
		if rerr != nil {
			return fail("%v", rerr)
		}
		parent, rerr := normalize.DecodeResult(data)
		if rerr != nil {
			return fail("decode %s: %v", *appendTo, rerr)
		}
		deltaRel, rerr := normalize.ReadCSVFile(fs.Arg(1))
		if rerr != nil {
			return fail("read %s: %v", fs.Arg(1), rerr)
		}
		base := rels[0]
		if !slices.Equal(deltaRel.Attrs, base.Attrs) {
			return fail("%s header %v does not match base attributes %v",
				fs.Arg(1), deltaRel.Attrs, base.Attrs)
		}
		res, dstats, err = normalize.NormalizeDelta(ctx, base, deltaRel.Rows(), parent,
			normalize.DeltaConfig{Options: opts})
	} else {
		res, err = normalize.NormalizeAllContext(ctx, rels, opts)
	}
	partial := false
	if err != nil {
		var pe *normalize.PartialError
		switch {
		case errors.As(err, &pe) && res != nil && !errors.Is(err, context.Canceled):
			// Timeout, budget exhaustion, or an isolated stage crash: the
			// partial schema is still usable — report, write it, and exit
			// with the distinct partial-result status at the end.
			fmt.Fprintf(stderr, "normalize: %v\n", err)
			partial = true
		case errors.Is(err, context.Canceled):
			// Graceful Ctrl-C: report what the pipeline got done before
			// the cancellation hit (interrupted stages are marked).
			fmt.Fprintln(stderr, "normalize: interrupted; partial stage telemetry:")
			rec.Summary(stderr)
			return exitInterrupt
		default:
			return fail("%v", err)
		}
	}
	if len(res.Degradations) > 0 {
		fmt.Fprintln(stderr, "normalize: run degraded to stay within budget:")
		fmt.Fprint(stderr, normalize.FormatDegradations(res.Degradations))
	}

	fmt.Fprintf(stdout, "-- %d input relation(s), %d FDs discovered in %v, %d decompositions\n",
		len(rels), res.Stats.NumFDs, res.Stats.Discovery.Round(1e6), res.Stats.Decompositions)
	if dstats != nil {
		fmt.Fprintf(stdout, "-- delta: %d appended row(s); cover FDs %d reused, %d demoted, %d candidates validated",
			dstats.DeltaRows, dstats.Reused, dstats.Demoted, dstats.Checked)
		if dstats.FellBack {
			fmt.Fprint(stdout, "; fell back to full re-discovery")
		}
		fmt.Fprintln(stdout)
	}
	for _, t := range res.Tables {
		fmt.Fprintf(stdout, "-- %s (%d rows)\n", t, t.Data.NumRows())
	}
	ddl := normalize.DDL(res.Tables)
	switch {
	case *dot:
		fmt.Fprintln(stdout, normalize.Dot(res.Tables))
	case *asJSON:
		data, err := normalize.SchemaJSON(res)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, string(data))
	default:
		fmt.Fprintln(stdout, ddl)
	}

	// With several input relations, INDs across their normalized tables
	// suggest the foreign keys Normalize cannot see within one relation.
	if len(rels) > 1 {
		if fks := normalize.SuggestForeignKeys(res.Tables); len(fks) > 0 {
			fmt.Fprintln(stdout, "-- suggested cross-relation foreign keys:")
			for _, fk := range fks {
				fmt.Fprintf(stdout, "--   %s.%s -> %s.%s  (score %.2f, coverage %.2f)\n",
					fk.IND.Dependent.Relation, fk.IND.Dependent.Attribute,
					fk.IND.Referenced.Relation, fk.IND.Referenced.Attribute,
					fk.Score, fk.IND.Coverage)
			}
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fail("%v", err)
		}
		if err := os.WriteFile(filepath.Join(*out, "schema.sql"), []byte(ddl), 0o644); err != nil {
			return fail("%v", err)
		}
		for _, t := range res.Tables {
			path := filepath.Join(*out, t.Name+".csv")
			if err := t.Data.WriteCSVFile(path); err != nil {
				return fail("%v", err)
			}
		}
		fmt.Fprintf(stdout, "-- wrote schema.sql and %d CSV files to %s\n", len(res.Tables), *out)
	}

	if *saveResult != "" {
		// The saved form carries everything a later -append-to run seeds
		// from: schema, FD cover, and the scoring facts. A partial run is
		// saved too but rejected as an append parent (its cover is not a
		// complete hypothesis).
		data, err := normalize.EncodeResult(res)
		if err != nil {
			return fail("encode result: %v", err)
		}
		if err := os.WriteFile(*saveResult, data, 0o644); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "-- wrote result (%d bytes) to %s\n", len(data), *saveResult)
	}

	if *telemetry {
		fmt.Fprintln(stderr, "-- per-stage telemetry:")
		rec.Summary(stderr)
	}

	if partial {
		return exitPartial
	}
	return exitOK
}

// consoleDecider reads decomposition and key choices from stdin.
func consoleDecider(stderr io.Writer) normalize.Decider {
	in := bufio.NewScanner(os.Stdin)
	choose := func(n int) int {
		for in.Scan() {
			v, err := strconv.Atoi(strings.TrimSpace(in.Text()))
			if err == nil && v < n {
				return v
			}
			fmt.Fprintf(stderr, "enter -1..%d: ", n-1)
		}
		return 0
	}
	return normalize.FuncDecider{
		ViolatingFD: func(t *normalize.Table, ranked []normalize.RankedFD) (int, *normalize.AttrSet) {
			fmt.Fprintf(stderr, "\n%s violates the target normal form; candidates:\n", t.Name)
			for i, rf := range ranked {
				fmt.Fprintf(stderr, "  [%d] %s -> %s (score %.3f)\n", i,
					strings.Join(t.AttrNames(rf.FD.Lhs), ","),
					strings.Join(t.AttrNames(rf.FD.Rhs), ","), rf.Score)
			}
			fmt.Fprint(stderr, "split by [index], -1 keeps the relation: ")
			return choose(len(ranked)), nil
		},
		PrimaryKey: func(t *normalize.Table, ranked []normalize.RankedKey) int {
			fmt.Fprintf(stderr, "\nprimary key for %s:\n", t.Name)
			for i, rk := range ranked {
				fmt.Fprintf(stderr, "  [%d] %v (score %.3f)\n", i, t.AttrNames(rk.Key), rk.Score)
			}
			fmt.Fprint(stderr, "choose [index], -1 for none: ")
			return choose(len(ranked))
		},
	}
}
