package main

import (
	"context"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"normalize/internal/replicate"
)

// followerOptions carries the -follow flag set into runFollower.
type followerOptions struct {
	leaderURL  string
	dataDir    string
	addr       string
	fsync      bool
	pollWait   time.Duration
	staleAfter time.Duration
	maxLag     int64
}

// runFollower runs normalized as a warm standby: mirror the leader's
// WAL into the data directory and serve the operational endpoints
// until a signal arrives. It never returns to main's server path —
// promotion is an explicit restart without -follow.
func runFollower(opts followerOptions) {
	if opts.dataDir == "" {
		log.Fatal("-follow requires -data-dir (the directory to replicate into)")
	}
	f, err := replicate.NewFollower(replicate.Config{
		LeaderURL:   opts.leaderURL,
		Dir:         opts.dataDir,
		Fsync:       opts.fsync,
		PollWait:    opts.pollWait,
		StaleAfter:  opts.staleAfter,
		MaxLagBytes: opts.maxLag,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.PublishVars("normalize_replication"); err != nil {
		log.Printf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Handler:           f.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Listen before Serve so ":0" resolves to a concrete port in the log
	// line — the node-kill harness (and humans) parse it.
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		log.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s (standby of %s, replicating into %s)",
		ln.Addr(), opts.leaderURL, opts.dataDir)

	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		f.Run(ctx)
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	<-runDone
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	if err := f.Close(); err != nil {
		log.Printf("close replica: %v", err)
	}
	st := f.Status()
	log.Printf("standby exiting (offset %d, lag %d bytes, %d snapshots, %d reconnects)",
		st.Offset, st.LagBytes, st.SnapshotsApplied, st.Reconnects)
}
