package main

// Mid-delta crash harness: SIGKILL the server while an incremental
// append job is running, restart on the same -data-dir, and require
// the delta job to re-run exactly once, converge to the same result a
// from-scratch run produces, and leave its lineage edge in the job
// store — the delta plane inherits the full durability contract of
// crash_test.go.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"normalize/internal/jobstore"
)

// wideCSV builds a random 16-column instance whose FD discovery takes
// a couple of seconds — wide enough that a fallback re-discovery is
// reliably mid-run at the kill.
func wideCSV(rows int) (string, []string) {
	rng := rand.New(rand.NewSource(7))
	cols := make([]string, 16)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	var b strings.Builder
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	rowVals := make([][]string, rows)
	for r := 0; r < rows; r++ {
		vals := make([]string, len(cols))
		for c := range vals {
			vals[c] = fmt.Sprintf("%d", rng.Intn(8))
		}
		rowVals[r] = vals
		b.WriteString(strings.Join(vals, ","))
		b.WriteByte('\n')
	}
	return b.String(), cols
}

// violentDelta clones one base row per column with that column bumped
// to a fresh value: each clone forms an agreeing pair refuting every
// cover FD with that column on the right-hand side, so the demotion
// fraction blows past the fallback threshold and the delta job re-runs
// full discovery on the combined instance — a seconds-long window to
// kill into.
func violentDelta(base string, cols []string) string {
	lines := strings.Split(strings.TrimSpace(base), "\n")
	var b strings.Builder
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for j := range cols {
		vals := strings.Split(lines[1+j], ",")
		vals[j] = "9" // outside the base domain 0..7: guaranteed conflict
		b.WriteString(strings.Join(vals, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func deltaJob(csv, parent string) string {
	b, _ := json.Marshal(csv)
	p, _ := json.Marshal(parent)
	return fmt.Sprintf(`{"name":"wide","csv":%s,"parent":%s,"options":{}}`, b, p)
}

func TestCrashRecoveryMidDeltaJobRerunsWithLineage(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	dir := t.TempDir()
	c1 := startChild(t, dir, "-workers", "1")

	base, cols := wideCSV(700)
	var parent status
	if code := c1.api("POST", "/v1/jobs", csvJob("wide", base), &parent); code != http.StatusAccepted {
		t.Fatalf("submit parent: %d", code)
	}
	parent = c1.waitTerminal(parent.ID)
	if parent.State != "done" || parent.Key == "" {
		t.Fatalf("parent: state=%s key=%q", parent.State, parent.Key)
	}

	delta := violentDelta(base, cols)
	var dj status
	if code := c1.api("POST", "/v1/jobs", deltaJob(delta, parent.ID), &dj); code != http.StatusAccepted {
		t.Fatalf("submit delta: %d", code)
	}
	c1.waitRunning(dj.ID)
	time.Sleep(150 * time.Millisecond) // into the fallback re-discovery
	c1.kill()                          // SIGKILL mid-delta-job

	c2 := startChild(t, dir, "-workers", "1")
	var jobs []status
	if code := c2.api("GET", "/v1/jobs", "", &jobs); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if len(jobs) != 2 {
		t.Fatalf("restart lost or duplicated jobs: %+v", jobs)
	}
	st := c2.waitTerminal(dj.ID)
	if st.State != "done" {
		t.Fatalf("delta re-run finished %s (%s), want done", st.State, st.Error)
	}
	if st.Parent != parent.Key {
		t.Errorf("restored delta parent key = %q, want %q", st.Parent, parent.Key)
	}

	// Differential check across the crash: the replayed delta result
	// matches a from-scratch run on the concatenated input.
	var deltaRes struct {
		DDL string `json:"ddl"`
	}
	if code := c2.api("GET", "/v1/jobs/"+dj.ID+"/result", "", &deltaRes); code != http.StatusOK {
		t.Fatalf("delta result: %d", code)
	}
	_, deltaRows, _ := strings.Cut(delta, "\n")
	var scratch status
	if code := c2.api("POST", "/v1/jobs", csvJob("wide", base+deltaRows), &scratch); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit scratch: %d", code)
	}
	c2.waitTerminal(scratch.ID)
	var scratchRes struct {
		DDL string `json:"ddl"`
	}
	c2.api("GET", "/v1/jobs/"+scratch.ID+"/result", "", &scratchRes)
	if deltaRes.DDL == "" || deltaRes.DDL != scratchRes.DDL {
		t.Error("replayed delta DDL differs from from-scratch DDL")
	}

	// Still exactly one delta job (plus parent and the scratch run): the
	// replay reused the identity, no clone.
	c2.api("GET", "/v1/jobs", "", &jobs)
	if len(jobs) != 3 {
		t.Errorf("job count after replay = %d, want 3", len(jobs))
	}
	deltaKey := st.Key
	c2.kill()

	// The lineage edge survived the crash and the replay wrote it
	// exactly once: (parent key, delta hash) → child key, owned by the
	// original job ID.
	store, rep, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if len(rep.Damage) > 1 { // at most the torn tail from the SIGKILL
		t.Errorf("recovery damage: %v", rep.Damage)
	}
	edge, ok := store.LookupLineage(deltaKey)
	if !ok || edge.Parent != parent.Key || edge.JobID != dj.ID {
		t.Fatalf("lineage edge = %+v, %v; want parent %.12s… job %s", edge, ok, parent.Key, dj.ID)
	}
	count := 0
	for _, e := range store.Lineage() {
		if e.Child == deltaKey {
			count++
		}
	}
	if count != 1 {
		t.Errorf("lineage edge recorded %d times, want once", count)
	}
}
