// Normalized is the long-lived server form of the normalize tool: it
// serves normalization jobs over HTTP — CSV uploads or built-in
// dataset generators — on a bounded worker pool with a FIFO queue,
// live per-stage progress as Server-Sent Events, per-job cancellation,
// a content-hash result cache, and pipeline metrics on /debug/vars.
//
//	normalized [-addr :8080] [-workers N] [-queue N] [-max-body BYTES]
//	           [-cache N] [-drain-grace DUR] [-quiet]
//
// Submit a job, watch it, fetch the result:
//
//	curl -s localhost:8080/v1/jobs -d '{"dataset":{"generator":"tpch","scale":0.0001,"seed":1},"options":{"max_lhs":3}}'
//	curl -N localhost:8080/v1/jobs/$ID/events
//	curl -s localhost:8080/v1/jobs/$ID/result?format=sql
//
// SIGTERM or SIGINT drains gracefully: readiness flips to 503, new
// submissions are rejected, in-flight jobs get -drain-grace to finish,
// and whatever still runs afterwards is cancelled — salvaging partial
// results — before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"normalize/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("normalized: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "normalization worker pool size")
	queue := flag.Int("queue", 32, "job queue depth (full queue rejects with 503)")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes")
	cache := flag.Int("cache", 64, "result cache entries (negative disables)")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "how long in-flight jobs may finish on shutdown before being cancelled")
	quiet := flag.Bool("quiet", false, "disable request logging")
	flag.Parse()

	cfg := server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		CacheEntries: *cache,
		Logf:         log.Printf,
	}
	if *quiet {
		cfg.Logf = nil
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, queue %d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (grace %s)", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	srv.Shutdown(drainCtx) // stop accepting, finish or cancel jobs
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("drained, exiting")
}
