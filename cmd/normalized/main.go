// Normalized is the long-lived server form of the normalize tool: it
// serves normalization jobs over HTTP — CSV uploads or built-in
// dataset generators — on a bounded worker pool with a FIFO queue,
// live per-stage progress as Server-Sent Events, per-job cancellation,
// a content-hash result cache, and pipeline metrics on /debug/vars.
//
//	normalized [-addr :8080] [-workers N] [-job-workers N] [-queue N]
//	           [-max-body BYTES] [-cache N] [-data-dir DIR] [-fsync]
//	           [-drain-grace DUR] [-quiet]
//	normalized -follow LEADER-URL -data-dir DIR [-addr :8080] [-fsync]
//	           [-repl-stale-after DUR] [-repl-max-lag BYTES]
//
// Submit a job, watch it, fetch the result:
//
//	curl -s localhost:8080/v1/jobs -d '{"dataset":{"generator":"tpch","scale":0.0001,"seed":1},"options":{"max_lhs":3}}'
//	curl -N localhost:8080/v1/jobs/$ID/events
//	curl -s localhost:8080/v1/jobs/$ID/result?format=sql
//
// SIGTERM or SIGINT drains gracefully: readiness flips to 503, new
// submissions are rejected, in-flight jobs get -drain-grace to finish,
// and whatever still runs afterwards is cancelled — salvaging partial
// results — before the process exits.
//
// With -data-dir, job state is crash-safe: every submission, lifecycle
// transition, and terminal result is appended to a write-ahead log in
// that directory, and a restart on the same directory replays it —
// finished jobs stay queryable (results, events, status), jobs that
// were queued or running when the process died are re-enqueued and run
// again, and the result cache is rehydrated. A SIGKILL mid-write costs
// at most the torn tail record, which recovery truncates and reports.
// Add -fsync to also survive power loss at the cost of one fsync per
// append.
//
// A persistent server is also a replication leader: it serves its
// write-ahead log on /v1/replication/{stream,snapshot,status}. With
// -follow, normalized runs as a warm standby instead of a server: it
// mirrors the leader's WAL and snapshot into -data-dir (reconnecting
// with backoff, verifying every frame's checksum, re-snapshotting on
// divergence) and serves only operational endpoints — /healthz,
// /readyz (503 while the mirror is stale or lagging), /telemetry, and
// /debug/vars. When the leader dies, promote the standby by restarting
// normalized on the same directory without -follow: interrupted jobs
// re-run, finished results stay served.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"normalize/internal/server"
	"normalize/internal/wsteal"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("normalized: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "normalization worker pool size (concurrent jobs)")
	jobWorkers := flag.Int("job-workers", 0, "default validation workers per job when a request omits options.workers (0 = all CPUs)")
	queue := flag.Int("queue", 32, "job queue depth (full queue rejects with 503)")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes")
	cache := flag.Int("cache", 64, "result cache entries (negative disables)")
	dataDir := flag.String("data-dir", "", "persist job state to this directory (crash-safe; empty = in-memory only)")
	spillDir := flag.String("spill-dir", "", "directory for transient spill files (default: data-dir/spill when -data-dir is set, else the OS temp dir)")
	fsync := flag.Bool("fsync", false, "fsync the job log after every append (survives power loss, not just SIGKILL)")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "how long in-flight jobs may finish on shutdown before being cancelled")
	quiet := flag.Bool("quiet", false, "disable request logging")
	follow := flag.String("follow", "", "run as a warm standby of this leader URL (requires -data-dir)")
	replPoll := flag.Duration("repl-poll", 0, "follower long-poll interval against the leader (default 5s)")
	replStaleAfter := flag.Duration("repl-stale-after", 0, "follower readiness: max age of the last leader sync (default 3x poll interval)")
	replMaxLag := flag.Int64("repl-max-lag", 0, "follower readiness: max journal bytes behind the leader (default 1 MiB)")
	flag.Parse()

	if *follow != "" {
		runFollower(followerOptions{
			leaderURL:  *follow,
			dataDir:    *dataDir,
			addr:       *addr,
			fsync:      *fsync,
			pollWait:   *replPoll,
			staleAfter: *replStaleAfter,
			maxLag:     *replMaxLag,
		})
		return
	}

	cfg := server.Config{
		Workers:      *workers,
		JobWorkers:   wsteal.ClampWorkers(*jobWorkers),
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		CacheEntries: *cache,
		DataDir:      *dataDir,
		SpillDir:     *spillDir,
		Fsync:        *fsync,
		Logf:         log.Printf,
	}
	if *quiet {
		cfg.Logf = nil
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if rep := srv.RecoveryReport(); rep != nil {
		log.Printf("job store %s: %s", *dataDir, rep)
		for _, d := range rep.Damage {
			log.Printf("job store damage: %s", d)
		}
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before Serve so ":0" resolves to a concrete port in the log
	// line — the crash-recovery harness (and humans) parse it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s (%d workers, queue %d)", ln.Addr(), *workers, *queue)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (grace %s)", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	srv.Shutdown(drainCtx) // stop accepting, finish or cancel jobs
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("drained, exiting")
}
