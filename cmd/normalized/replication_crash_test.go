package main

// Node-death harness for warm-standby replication: real leader and
// follower processes (the test binary re-exec'd, like crash_test.go),
// whole nodes SIGKILLed — no drains, no flushes — and the follower's
// directory promoted by starting a plain normalized on it. The
// guarantees under test extend the single-node durability contract
// across the replication link:
//
//   - no terminal result replicated before the kill is ever lost;
//   - promotion never duplicates a job;
//   - jobs interrupted mid-run on the leader re-run exactly once on
//     the promoted node;
//   - a follower killed and restarted resumes by offset (no snapshot
//     transfer) and its readiness tracks leader health.

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

// replStatus covers both status wire forms: the leader's
// {epoch, log_size} and the follower's richer Status.
type replStatus struct {
	Epoch            string `json:"epoch"`
	LogSize          int64  `json:"log_size"`
	Offset           int64  `json:"offset"`
	LeaderLogSize    int64  `json:"leader_log_size"`
	LagBytes         int64  `json:"lag_bytes"`
	SnapshotsApplied int64  `json:"snapshots_applied"`
	Reconnects       int64  `json:"reconnects"`
	Ready            bool   `json:"ready"`
}

// startFollowerChild launches a standby replicating from leader with a
// fast poll so tests converge quickly.
func startFollowerChild(t *testing.T, dataDir string, leader *child, extra ...string) *child {
	t.Helper()
	args := append([]string{
		"-follow", leader.base,
		"-repl-poll", "300ms",
	}, extra...)
	return startChild(t, dataDir, args...)
}

// waitSynced polls until the follower holds everything the leader has:
// same epoch, offset at the leader's journal end.
func waitSynced(t *testing.T, follower, leader *child) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var ls, fs replStatus
		if code := leader.api("GET", "/v1/replication/status", "", &ls); code != http.StatusOK {
			t.Fatalf("leader status: %d", code)
		}
		if code := follower.api("GET", "/v1/replication/status", "", &fs); code != http.StatusOK {
			t.Fatalf("follower status: %d", code)
		}
		if fs.Epoch == ls.Epoch && fs.Offset == ls.LogSize {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("follower never caught up with the leader")
}

// freeAddr reserves a concrete loopback address a restarted leader can
// reuse (a kill-restart cycle must keep the address the follower was
// told to follow).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// readyzCode fetches the follower's readiness without JSON decoding.
func readyzCode(t *testing.T, c *child) int {
	t.Helper()
	resp, err := http.Get(c.url("/readyz"))
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// resultDDL fetches a job's result DDL and schema for byte comparison.
func resultDDL(t *testing.T, c *child, id string) (string, string) {
	t.Helper()
	var res struct {
		DDL    string          `json:"ddl"`
		Schema json.RawMessage `json:"schema"`
	}
	if code := c.api("GET", "/v1/jobs/"+id+"/result", "", &res); code != http.StatusOK {
		t.Fatalf("result %s: %d", id, code)
	}
	return res.DDL, string(res.Schema)
}

// TestNodeKillLeaderPromoteFollower is the headline scenario: the
// leader dies mid-run, the whole standby node dies with it, and a
// plain normalized started on the standby's directory carries on —
// finished results byte-identical, the interrupted job re-run exactly
// once, nothing duplicated.
func TestNodeKillLeaderPromoteFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	leaderDir, standbyDir := t.TempDir(), t.TempDir()
	leader := startChild(t, leaderDir, "-workers", "1")
	follower := startFollowerChild(t, standbyDir, leader)

	// A finished job whose result must survive promotion verbatim.
	var done status
	if code := leader.api("POST", "/v1/jobs", csvJob("address", crashCSV), &done); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	leader.waitTerminal(done.ID)
	wantDDL, wantSchema := resultDDL(t, leader, done.ID)

	// A long job caught mid-run by the node kill.
	var long status
	if code := leader.api("POST", "/v1/jobs", longJob, &long); code != http.StatusAccepted {
		t.Fatalf("submit long: %d", code)
	}
	leader.waitRunning(long.ID)
	waitSynced(t, follower, leader)

	// Both nodes die, leader first — no drain path runs anywhere.
	leader.kill()
	follower.kill()

	// Promotion: a plain server on the standby's directory.
	promoted := startChild(t, standbyDir, "-workers", "1")
	var jobs []status
	if code := promoted.api("GET", "/v1/jobs", "", &jobs); code != http.StatusOK {
		t.Fatal("list on promoted node failed")
	}
	if len(jobs) != 2 {
		t.Fatalf("promoted node sees %d jobs, want 2: %+v", len(jobs), jobs)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("job %s duplicated on promotion", j.ID)
		}
		seen[j.ID] = true
	}

	// The finished result survived byte-for-byte.
	if st := promoted.waitTerminal(done.ID); st.State != "done" {
		t.Errorf("finished job restored as %s", st.State)
	}
	gotDDL, gotSchema := resultDDL(t, promoted, done.ID)
	if gotDDL != wantDDL || gotSchema != wantSchema {
		t.Errorf("result changed across promotion:\nleader   %s\npromoted %s", wantDDL, gotDDL)
	}

	// The interrupted job re-ran exactly once to completion.
	if st := promoted.waitTerminal(long.ID); st.State != "done" {
		t.Errorf("interrupted job ended %s (%s), want done", st.State, st.Error)
	}
	promoted.api("GET", "/v1/jobs", "", &jobs)
	if len(jobs) != 2 {
		t.Errorf("re-run duplicated a job: %d entries", len(jobs))
	}

	// The replicated cache answers identical resubmissions.
	var hit status
	if code := promoted.api("POST", "/v1/jobs", csvJob("address", crashCSV), &hit); code != http.StatusOK || !hit.Cached {
		t.Errorf("promoted cache miss: %d %+v", code, hit)
	}
}

// TestNodeKillFollowerRejoinsByOffset kills the standby, lets the
// leader advance, and restarts the standby on its directory: it must
// resume from its journal offset — no snapshot transfer — and still be
// promotable afterwards.
func TestNodeKillFollowerRejoinsByOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	leaderDir, standbyDir := t.TempDir(), t.TempDir()
	leader := startChild(t, leaderDir, "-workers", "1")

	f1 := startFollowerChild(t, standbyDir, leader)
	var first status
	if code := leader.api("POST", "/v1/jobs", csvJob("address", crashCSV), &first); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	leader.waitTerminal(first.ID)
	waitSynced(t, f1, leader)
	f1.kill() // standby node dies

	// History advances while the standby is dark.
	var second status
	csv2 := "A,B\n1,x\n2,y\n3,x\n"
	if code := leader.api("POST", "/v1/jobs", csvJob("later", csv2), &second); code != http.StatusAccepted {
		t.Fatalf("submit second: %d", code)
	}
	leader.waitTerminal(second.ID)

	f2 := startFollowerChild(t, standbyDir, leader)
	waitSynced(t, f2, leader)
	var fs replStatus
	f2.api("GET", "/v1/replication/status", "", &fs)
	if fs.SnapshotsApplied != 0 {
		t.Errorf("rejoin transferred %d snapshots, want pure offset resume", fs.SnapshotsApplied)
	}
	if code := readyzCode(t, f2); code != http.StatusOK {
		t.Errorf("caught-up standby readyz = %d, want 200", code)
	}

	leader.kill()
	f2.kill()
	promoted := startChild(t, standbyDir)
	for _, id := range []string{first.ID, second.ID} {
		if st := promoted.waitTerminal(id); st.State != "done" {
			t.Errorf("job %s on promoted node: %s", id, st.State)
		}
	}
}

// TestFollowerReadyzTracksLeaderDeath pins the load-balancer contract:
// a standby whose leader died goes unready once its last sync is older
// than -repl-stale-after, and recovers — via snapshot catch-up against
// the restarted leader's new epoch — without operator help.
func TestFollowerReadyzTracksLeaderDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	leaderDir, standbyDir := t.TempDir(), t.TempDir()
	// The leader's address must survive its restart, so pin a port
	// instead of the usual :0 (a follower follows an address, not a
	// process).
	leaderAddr := freeAddr(t)
	leader := startChild(t, leaderDir, "-workers", "1", "-addr", leaderAddr)
	follower := startFollowerChild(t, standbyDir, leader, "-repl-stale-after", "1500ms")

	var st status
	if code := leader.api("POST", "/v1/jobs", csvJob("address", crashCSV), &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	leader.waitTerminal(st.ID)
	waitSynced(t, follower, leader)
	if code := readyzCode(t, follower); code != http.StatusOK {
		t.Fatalf("healthy standby readyz = %d, want 200", code)
	}

	// Leader node dies; the standby must flip unready within the stale
	// window rather than advertising a dead link forever.
	leader.kill()
	flipDeadline := time.Now().Add(30 * time.Second)
	for readyzCode(t, follower) != http.StatusServiceUnavailable {
		if !time.Now().Before(flipDeadline) {
			t.Fatal("standby stayed ready with a dead leader")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A restarted leader (same address, new epoch) forces a snapshot
	// catch-up; readiness must recover on its own.
	leader2 := startChild(t, leaderDir, "-workers", "1", "-addr", leaderAddr)
	recoverDeadline := time.Now().Add(60 * time.Second)
	for readyzCode(t, follower) != http.StatusOK {
		if !time.Now().Before(recoverDeadline) {
			var fs replStatus
			follower.api("GET", "/v1/replication/status", "", &fs)
			t.Fatalf("standby never recovered after leader restart: %+v", fs)
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitSynced(t, follower, leader2)
	var fs replStatus
	follower.api("GET", "/v1/replication/status", "", &fs)
	if fs.SnapshotsApplied < 2 {
		// One snapshot joined the first leader, a second must have
		// re-joined the restarted one's new epoch.
		t.Errorf("new-epoch rejoin without snapshot catch-up: %+v", fs)
	}
	if fs.Reconnects == 0 {
		t.Errorf("leader death counted no reconnects: %+v", fs)
	}
}
