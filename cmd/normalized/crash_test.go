package main

// Crash-recovery harness: the test binary re-executes itself as a real
// normalized server (TestMain switches on an env var), the parent
// drives it over HTTP, SIGKILLs it at chosen lifecycle points — jobs
// done, mid-run, queued — and restarts it on the same -data-dir. The
// guarantees under test are the durability contract of the job store:
//
//   - no terminal result is ever lost;
//   - every job that was incomplete at the kill re-runs exactly once;
//   - the rehydrated result cache answers identical resubmissions;
//   - recovery never fails, whatever instant the kill hit (the torn
//     tail is truncated and reported instead).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const childEnv = "NORMALIZED_CRASH_CHILD"

// TestMain turns the test binary into the server itself when re-exec'd
// by the harness; otherwise it runs the tests normally.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// child is one managed normalized process.
type child struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

// startChild launches the server on a free port with the given data
// dir and waits for its listen line.
func startChild(t *testing.T, dataDir string, extra ...string) *child {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-quiet"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{t: t, cmd: cmd}
	t.Cleanup(func() { c.kill() })

	// The server logs "listening on 127.0.0.1:PORT (...)" once bound.
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					rest = rest[:j]
				}
				select {
				case addr <- rest:
				default:
				}
			}
		}
		// Drain to EOF so the child never blocks on a full stderr pipe.
	}()
	select {
	case a := <-addr:
		c.base = "http://" + a
	case <-time.After(30 * time.Second):
		t.Fatal("child never reported its listen address")
	}
	return c
}

// kill delivers SIGKILL — no shutdown hooks, no flushes — and reaps.
func (c *child) kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Signal(syscall.SIGKILL)
		c.cmd.Wait()
	}
}

func (c *child) url(path string) string { return c.base + path }

// api performs a JSON request against the child.
func (c *child) api(method, path, body string, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.url(path), rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: %v: %s", method, path, err, data)
		}
	}
	return resp.StatusCode
}

// status mirrors the server's job status wire form.
type status struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Key     string `json:"key"`
	Parent  string `json:"parent"`
	Cached  bool   `json:"cached"`
	Error   string `json:"error"`
	Tables  int    `json:"tables"`
	Created string `json:"created"`
}

func terminal(state string) bool {
	switch state {
	case "done", "partial", "cancelled", "failed":
		return true
	}
	return false
}

func (c *child) waitTerminal(id string) status {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st status
		if code := c.api("GET", "/v1/jobs/"+id, "", &st); code != http.StatusOK {
			c.t.Fatalf("status %s: %d", id, code)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("job %s never finished", id)
	return status{}
}

func (c *child) waitRunning(id string) {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st status
		c.api("GET", "/v1/jobs/"+id, "", &st)
		if st.State == "running" {
			return
		}
		if terminal(st.State) {
			c.t.Fatalf("job %s finished before the kill (state %s); enlarge the workload", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatalf("job %s never started running", id)
}

const crashCSV = `First,Last,Postcode,City,Mayor
Thomas,Miller,14482,Potsdam,Jakobs
Sarah,Miller,14482,Potsdam,Jakobs
Peter,Smith,60329,Frankfurt,Feldmann
Jasmine,Cone,01069,Dresden,Orosz
`

func csvJob(name, csv string) string {
	b, _ := json.Marshal(csv)
	return fmt.Sprintf(`{"name":%q,"csv":%s,"options":{}}`, name, b)
}

// longJob runs for seconds (flight: 109 attributes, max_lhs 3) — wide
// enough to be mid-run at the kill on any machine.
const longJob = `{"dataset":{"generator":"flight","seed":1},"options":{"max_lhs":3}}`

func TestCrashRecoveryTerminalResultsSurviveKill(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	dir := t.TempDir()
	c1 := startChild(t, dir)

	var done status
	if code := c1.api("POST", "/v1/jobs", csvJob("address", crashCSV), &done); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	c1.waitTerminal(done.ID)
	var before json.RawMessage
	c1.api("GET", "/v1/jobs/"+done.ID+"/result", "", &before)

	var hit status
	if code := c1.api("POST", "/v1/jobs", csvJob("address", crashCSV), &hit); code != http.StatusOK || !hit.Cached {
		t.Fatalf("resubmission not a cache hit: %d %+v", code, hit)
	}
	c1.kill()

	c2 := startChild(t, dir)
	for _, id := range []string{done.ID, hit.ID} {
		st := c2.waitTerminal(id)
		if st.State != "done" {
			t.Errorf("job %s restored as %s", id, st.State)
		}
	}
	var after json.RawMessage
	if code := c2.api("GET", "/v1/jobs/"+done.ID+"/result", "", &after); code != http.StatusOK {
		t.Fatalf("restored result: %d", code)
	}
	var b, a struct {
		Schema json.RawMessage `json:"schema"`
		DDL    string          `json:"ddl"`
	}
	json.Unmarshal(before, &b)
	json.Unmarshal(after, &a)
	if a.DDL == "" || a.DDL != b.DDL || string(a.Schema) != string(b.Schema) {
		t.Errorf("result changed across the kill:\nbefore %s\nafter  %s", b.DDL, a.DDL)
	}

	// The rehydrated cache answers without recomputing.
	var again status
	if code := c2.api("POST", "/v1/jobs", csvJob("address", crashCSV), &again); code != http.StatusOK || !again.Cached {
		t.Errorf("post-crash submission missed the warmed cache: %d %+v", code, again)
	}
}

func TestCrashRecoveryMidRunJobRerunsOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	dir := t.TempDir()
	c1 := startChild(t, dir, "-workers", "1")

	var long status
	if code := c1.api("POST", "/v1/jobs", longJob, &long); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	c1.waitRunning(long.ID)
	c1.kill() // SIGKILL mid-normalization

	c2 := startChild(t, dir, "-workers", "1")
	var jobs []status
	if code := c2.api("GET", "/v1/jobs", "", &jobs); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if len(jobs) != 1 || jobs[0].ID != long.ID {
		t.Fatalf("restart lost or duplicated the job: %+v", jobs)
	}
	st := c2.waitTerminal(long.ID)
	if st.State != "done" {
		t.Errorf("re-run finished %s (%s), want done", st.State, st.Error)
	}
	if code := c2.api("GET", "/v1/jobs/"+long.ID+"/result", "", nil); code != http.StatusOK {
		t.Errorf("re-run result: %d", code)
	}
	// Still exactly one job: the re-run reused the identity, no clone.
	c2.api("GET", "/v1/jobs", "", &jobs)
	if len(jobs) != 1 {
		t.Errorf("re-run duplicated the job: %d entries", len(jobs))
	}
}

func TestCrashRecoveryQueuedBacklogSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	dir := t.TempDir()
	c1 := startChild(t, dir, "-workers", "1")

	// One long job occupies the single worker; quick jobs pile up
	// queued behind it.
	var long status
	c1.api("POST", "/v1/jobs", longJob, &long)
	c1.waitRunning(long.ID)
	var queued []string
	for i := 0; i < 3; i++ {
		csv := fmt.Sprintf("A,B\nrow%d,x\nrow%d,y\n", i, i)
		var st status
		if code := c1.api("POST", "/v1/jobs", csvJob("q", csv), &st); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		queued = append(queued, st.ID)
	}
	c1.kill()

	c2 := startChild(t, dir, "-workers", "2")
	var jobs []status
	c2.api("GET", "/v1/jobs", "", &jobs)
	if len(jobs) != 1+len(queued) {
		t.Fatalf("restart lost jobs: %d of %d", len(jobs), 1+len(queued))
	}
	for _, id := range append([]string{long.ID}, queued...) {
		st := c2.waitTerminal(id)
		if st.State != "done" {
			t.Errorf("job %s re-ran to %s (%s)", id, st.State, st.Error)
		}
	}
}

// TestCrashRecoveryKillLoop kills the server at arbitrary instants
// while it processes a stream of small jobs, restarting each time on
// the same directory. Whatever the timing, recovery must succeed, jobs
// must never duplicate, and every job observed terminal before a kill
// must still be terminal with a result after every later restart.
func TestCrashRecoveryKillLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	dir := t.TempDir()
	doneBefore := map[string]string{} // job ID -> DDL observed before some kill

	rounds := 4
	for round := 0; round < rounds; round++ {
		c := startChild(t, dir, "-workers", "2")

		// Everything that was ever observed done must still be done.
		for id, ddl := range doneBefore {
			st := c.waitTerminal(id)
			if st.State != "done" {
				t.Fatalf("round %d: job %s regressed to %s", round, id, st.State)
			}
			var res struct {
				DDL string `json:"ddl"`
			}
			if code := c.api("GET", "/v1/jobs/"+id+"/result", "", &res); code != http.StatusOK {
				t.Fatalf("round %d: result %s: %d", round, id, code)
			}
			if res.DDL != ddl {
				t.Fatalf("round %d: job %s result changed", round, id)
			}
		}

		// Add fresh work; let some of it finish, then kill mid-stream.
		var ids []string
		for i := 0; i < 3; i++ {
			csv := fmt.Sprintf("K,V\nr%d_%d,a\nr%d_%d,b\n", round, i, round, i)
			var st status
			if code := c.api("POST", "/v1/jobs", csvJob("loop", csv), &st); code != http.StatusAccepted {
				t.Fatalf("round %d submit %d: %d", round, i, code)
			}
			ids = append(ids, st.ID)
		}
		// Record whatever reached done before the kill.
		first := c.waitTerminal(ids[0])
		if first.State == "done" {
			var res struct {
				DDL string `json:"ddl"`
			}
			c.api("GET", "/v1/jobs/"+ids[0]+"/result", "", &res)
			doneBefore[ids[0]] = res.DDL
		}
		c.kill()
	}

	// Final boot: everything ever submitted converges to done.
	c := startChild(t, dir, "-workers", "2")
	var jobs []status
	c.api("GET", "/v1/jobs", "", &jobs)
	seen := map[string]int{}
	for _, j := range jobs {
		seen[j.ID]++
		if seen[j.ID] > 1 {
			t.Fatalf("job %s duplicated after kill loop", j.ID)
		}
		st := c.waitTerminal(j.ID)
		if st.State != "done" {
			t.Errorf("job %s ended %s (%s)", j.ID, st.State, st.Error)
		}
	}
	if len(jobs) != rounds*3 {
		t.Errorf("job count after kill loop: %d, want %d", len(jobs), rounds*3)
	}
}

// TestCrashRecoveryFsyncFlag exercises the -fsync path end to end.
func TestCrashRecoveryFsyncFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test")
	}
	dir := t.TempDir()
	c1 := startChild(t, dir, "-fsync")
	var st status
	if code := c1.api("POST", "/v1/jobs", csvJob("address", crashCSV), &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	c1.waitTerminal(st.ID)
	c1.kill()

	c2 := startChild(t, dir, "-fsync")
	if got := c2.waitTerminal(st.ID); got.State != "done" {
		t.Errorf("fsync'd job restored as %s", got.State)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.log")); err != nil {
		t.Errorf("journal missing: %v", err)
	}
}
