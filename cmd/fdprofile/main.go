// Fdprofile profiles a CSV relation for functional dependencies and
// candidate keys — the discovery components of the normalization system
// as a standalone tool.
//
//	fdprofile [-algo hyfd|tane] [-maxlhs N] [-extend] [-keys] file.csv
//
// With -extend the FDs are printed with transitively maximized
// right-hand sides (the closure F⁺ of the paper's Section 4).
package main

import (
	"flag"
	"fmt"
	"log"

	"normalize"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdprofile: ")
	algoName := flag.String("algo", "hyfd", "discovery algorithm: hyfd, tane, or dfd")
	maxLhs := flag.Int("maxlhs", 0, "prune FDs with left-hand sides larger than this (0 = unbounded)")
	extend := flag.Bool("extend", false, "maximize right-hand sides (closure F+)")
	showKeys := flag.Bool("keys", false, "also discover minimal candidate keys")
	asJSON := flag.Bool("json", false, "emit the FDs as JSON instead of text")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fdprofile [flags] file.csv")
	}

	rel, err := normalize.ReadCSVFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	algo := normalize.HyFD
	switch *algoName {
	case "hyfd":
	case "tane":
		algo = normalize.TANE
	case "dfd":
		algo = normalize.DFD
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}

	fds := normalize.DiscoverFDs(rel, algo, *maxLhs)
	if *extend {
		normalize.ExtendFDs(fds, normalize.ClosureOptimized)
	}
	if *asJSON {
		data, err := normalize.FDSetJSON(rel, fds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("# %s: %d attributes, %d rows, %d minimal FDs (%d left-hand sides)\n",
			rel.Name, rel.NumAttrs(), rel.NumRows(), fds.CountSingle(), fds.Len())
		fmt.Print(fds.Format(rel.Attrs))
	}

	if *showKeys {
		fmt.Println("# minimal keys:")
		for _, k := range normalize.DiscoverKeys(rel) {
			names := make([]string, 0, k.Cardinality())
			k.ForEach(func(e int) bool {
				names = append(names, rel.Attrs[e])
				return true
			})
			fmt.Printf("key: %v\n", names)
		}
	}
}
