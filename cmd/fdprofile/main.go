// Fdprofile profiles a CSV relation for functional dependencies and
// candidate keys — the discovery components of the normalization system
// as a standalone tool.
//
//	fdprofile [-algo hyfd|tane] [-maxlhs N] [-extend] [-keys] file.csv
//
// With -extend the FDs are printed with transitively maximized
// right-hand sides (the closure F⁺ of the paper's Section 4).
//
// Ctrl-C cancels a running profile gracefully: the process prints the
// stage telemetry collected so far and exits with status 130. -timeout
// bounds the profile's wall-clock time the same way (exit status 3, so
// scripts can tell an expired budget from an interactive interrupt),
// and -lenient loads malformed CSV by skipping bad rows instead of
// aborting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"normalize"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdprofile: ")
	algoName := flag.String("algo", "hyfd", "discovery algorithm: hyfd, tane, or dfd")
	maxLhs := flag.Int("maxlhs", 0, "prune FDs with left-hand sides larger than this (0 = unbounded)")
	extend := flag.Bool("extend", false, "maximize right-hand sides (closure F+)")
	showKeys := flag.Bool("keys", false, "also discover minimal candidate keys")
	asJSON := flag.Bool("json", false, "emit the FDs as JSON instead of text")
	timeout := flag.Duration("timeout", 0, "bound the profile's wall-clock time (0 = none)")
	lenient := flag.Bool("lenient", false, "skip malformed CSV rows instead of aborting")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: fdprofile [flags] file.csv")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rel *normalize.Relation
	var err error
	if *lenient {
		var skipped []normalize.RowError
		rel, skipped, err = normalize.ReadCSVFileLenient(flag.Arg(0))
		for _, re := range skipped {
			fmt.Fprintf(os.Stderr, "fdprofile: skipped %v\n", re)
		}
	} else {
		rel, err = normalize.ReadCSVFile(flag.Arg(0))
	}
	if err != nil {
		log.Fatal(err)
	}

	algo := normalize.HyFD
	switch *algoName {
	case "hyfd":
	case "tane":
		algo = normalize.TANE
	case "dfd":
		algo = normalize.DFD
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}

	// The profile stages run under manual recorder spans so an
	// interrupted run still reports what it finished.
	rec := normalize.NewRecordingObserver()
	interrupted := func(err error) {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintln(os.Stderr, "fdprofile: timeout; partial stage telemetry:")
			rec.Summary(os.Stderr)
			os.Exit(3)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "fdprofile: interrupted; partial stage telemetry:")
			rec.Summary(os.Stderr)
			stop()
			os.Exit(130)
		default:
			log.Fatal(err)
		}
	}

	rec.StageStart(normalize.StageDiscovery)
	start := time.Now()
	fds, err := normalize.DiscoverFDsContext(ctx, rel, algo, *maxLhs)
	if err != nil {
		interrupted(err)
	}
	rec.StageFinish(normalize.StageDiscovery, time.Since(start))

	if *extend {
		rec.StageStart(normalize.StageClosure)
		start = time.Now()
		if _, err := normalize.ExtendFDsContext(ctx, fds, normalize.ClosureOptimized); err != nil {
			interrupted(err)
		}
		rec.StageFinish(normalize.StageClosure, time.Since(start))
	}
	if *asJSON {
		data, err := normalize.FDSetJSON(rel, fds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("# %s: %d attributes, %d rows, %d minimal FDs (%d left-hand sides)\n",
			rel.Name, rel.NumAttrs(), rel.NumRows(), fds.CountSingle(), fds.Len())
		fmt.Print(fds.Format(rel.Attrs))
	}

	if *showKeys {
		rec.StageStart(normalize.StagePrimaryKey)
		start = time.Now()
		keys, err := normalize.DiscoverKeysContext(ctx, rel)
		if err != nil {
			interrupted(err)
		}
		rec.StageFinish(normalize.StagePrimaryKey, time.Since(start))
		fmt.Println("# minimal keys:")
		for _, k := range keys {
			names := make([]string, 0, k.Cardinality())
			k.ForEach(func(e int) bool {
				names = append(names, rel.Attrs[e])
				return true
			})
			fmt.Printf("key: %v\n", names)
		}
	}
}
