package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkBusPublish-8   \t 1971642\t   608.5 ns/op\t 392 B/op\t  5 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	// Names stay verbatim at parse time; the procs suffix is resolved
	// run-wide by stripProcsSuffix.
	if b.Name != "BenchmarkBusPublish-8" || b.Procs != 0 || b.Runs != 1971642 {
		t.Errorf("header fields = %+v", b)
	}
	if b.NsPerOp != 608.5 || b.BytesPerOp == nil || *b.BytesPerOp != 392 ||
		b.AllocsPerOp == nil || *b.AllocsPerOp != 5 {
		t.Errorf("metrics = %+v", b)
	}

	if _, ok := parseBenchLine("BenchmarkBroken-8 notanumber 1 ns/op"); ok {
		t.Error("malformed runs accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoMetrics-8 100"); ok {
		t.Error("line without ns/op accepted")
	}

	// Throughput variant without -benchmem.
	b, ok = parseBenchLine("BenchmarkCSV 500 25000 ns/op 120.00 MB/s")
	if !ok || b.MBPerSec != 120 || b.BytesPerOp != nil {
		t.Errorf("throughput line = %+v ok=%v", b, ok)
	}

	// Custom ReportMetric units land in the Metrics map.
	b, ok = parseBenchLine("BenchmarkDeltaAppend/delta 1 295364186 ns/op 2527 candidates/op")
	if !ok || b.Metrics["candidates/op"] != 2527 {
		t.Errorf("custom metric line = %+v ok=%v", b, ok)
	}
}

func TestStripProcsSuffix(t *testing.T) {
	// Uniform GOMAXPROCS suffix: stripped into Procs, even when a
	// sub-benchmark encodes its own trailing number.
	bs := []benchmark{
		{Name: "BenchmarkA-8"},
		{Name: "BenchmarkHyFDWorkers/workers-4-8"},
		{Name: "BenchmarkHyFDWorkers/workers-2-8"},
	}
	stripProcsSuffix(bs)
	if bs[0].Name != "BenchmarkA" || bs[0].Procs != 8 {
		t.Errorf("plain name: %+v", bs[0])
	}
	if bs[1].Name != "BenchmarkHyFDWorkers/workers-4" || bs[1].Procs != 8 {
		t.Errorf("workers name: %+v", bs[1])
	}

	// GOMAXPROCS=1 host: go appends no suffix, so the workers-N series
	// must keep its numbers — the trailing values differ across lines.
	bs = []benchmark{
		{Name: "BenchmarkHyFDWorkers/workers-1"},
		{Name: "BenchmarkHyFDWorkers/workers-2"},
		{Name: "BenchmarkHyFDWorkers/workers-4"},
	}
	stripProcsSuffix(bs)
	for i, want := range []string{"workers-1", "workers-2", "workers-4"} {
		if bs[i].Name != "BenchmarkHyFDWorkers/"+want || bs[i].Procs != 0 {
			t.Errorf("single-core series[%d] = %+v", i, bs[i])
		}
	}

	// A non-numeric tail anywhere disables stripping for the whole run.
	bs = []benchmark{{Name: "BenchmarkA-8"}, {Name: "BenchmarkB/own"}}
	stripProcsSuffix(bs)
	if bs[0].Name != "BenchmarkA-8" || bs[0].Procs != 0 {
		t.Errorf("mixed run stripped anyway: %+v", bs[0])
	}
}

func TestDeriveWorkerSpeedups(t *testing.T) {
	bs := []benchmark{
		{Name: "BenchmarkHyFDWorkers/workers-1", NsPerOp: 1000},
		{Name: "BenchmarkHyFDWorkers/workers-2", NsPerOp: 500},
		{Name: "BenchmarkHyFDWorkers/workers-4", NsPerOp: 250},
		{Name: "BenchmarkNormalizeWorkers/workers-1", NsPerOp: 4000},
		{Name: "BenchmarkNormalizeWorkers/workers-4", NsPerOp: 2000},
		{Name: "BenchmarkFigure3TPCH", NsPerOp: 99},
	}
	deriveWorkerSpeedups(bs)
	for i, want := range []float64{1, 2, 4, 1, 2} {
		if got := bs[i].Metrics["speedup_vs_1w"]; got != want {
			t.Errorf("%s: speedup_vs_1w = %v, want %v", bs[i].Name, got, want)
		}
	}
	if bs[5].Metrics != nil {
		t.Errorf("non-series benchmark gained metrics: %+v", bs[5])
	}

	// -count > 1 repeats every entry; the baseline is the MEAN of the
	// workers-1 entries, applied to each repetition.
	bs = []benchmark{
		{Name: "BenchmarkHyFDWorkers/workers-1", NsPerOp: 900},
		{Name: "BenchmarkHyFDWorkers/workers-2", NsPerOp: 550},
		{Name: "BenchmarkHyFDWorkers/workers-1", NsPerOp: 1100},
		{Name: "BenchmarkHyFDWorkers/workers-2", NsPerOp: 450},
	}
	deriveWorkerSpeedups(bs)
	if got := bs[1].Metrics["speedup_vs_1w"]; got != 1000.0/550.0 {
		t.Errorf("repeated series: speedup_vs_1w = %v, want %v", got, 1000.0/550.0)
	}
	if got := bs[0].Metrics["speedup_vs_1w"]; got != 1000.0/900.0 {
		t.Errorf("workers-1 repetition: speedup_vs_1w = %v, want %v", got, 1000.0/900.0)
	}

	// A series without a workers-1 baseline is left untouched.
	bs = []benchmark{{Name: "BenchmarkX/workers-4", NsPerOp: 10}}
	deriveWorkerSpeedups(bs)
	if bs[0].Metrics != nil {
		t.Errorf("baseline-less series gained metrics: %+v", bs[0])
	}
}
