package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkBusPublish-8   \t 1971642\t   608.5 ns/op\t 392 B/op\t  5 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	// Names stay verbatim at parse time; the procs suffix is resolved
	// run-wide by stripProcsSuffix.
	if b.Name != "BenchmarkBusPublish-8" || b.Procs != 0 || b.Runs != 1971642 {
		t.Errorf("header fields = %+v", b)
	}
	if b.NsPerOp != 608.5 || b.BytesPerOp == nil || *b.BytesPerOp != 392 ||
		b.AllocsPerOp == nil || *b.AllocsPerOp != 5 {
		t.Errorf("metrics = %+v", b)
	}

	if _, ok := parseBenchLine("BenchmarkBroken-8 notanumber 1 ns/op"); ok {
		t.Error("malformed runs accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoMetrics-8 100"); ok {
		t.Error("line without ns/op accepted")
	}

	// Throughput variant without -benchmem.
	b, ok = parseBenchLine("BenchmarkCSV 500 25000 ns/op 120.00 MB/s")
	if !ok || b.MBPerSec != 120 || b.BytesPerOp != nil {
		t.Errorf("throughput line = %+v ok=%v", b, ok)
	}

	// Custom ReportMetric units land in the Metrics map.
	b, ok = parseBenchLine("BenchmarkDeltaAppend/delta 1 295364186 ns/op 2527 candidates/op")
	if !ok || b.Metrics["candidates/op"] != 2527 {
		t.Errorf("custom metric line = %+v ok=%v", b, ok)
	}
}

func TestStripProcsSuffix(t *testing.T) {
	// Uniform GOMAXPROCS suffix: stripped into Procs, even when a
	// sub-benchmark encodes its own trailing number.
	bs := []benchmark{
		{Name: "BenchmarkA-8"},
		{Name: "BenchmarkHyFDWorkers/workers-4-8"},
		{Name: "BenchmarkHyFDWorkers/workers-2-8"},
	}
	stripProcsSuffix(bs)
	if bs[0].Name != "BenchmarkA" || bs[0].Procs != 8 {
		t.Errorf("plain name: %+v", bs[0])
	}
	if bs[1].Name != "BenchmarkHyFDWorkers/workers-4" || bs[1].Procs != 8 {
		t.Errorf("workers name: %+v", bs[1])
	}

	// GOMAXPROCS=1 host: go appends no suffix, so the workers-N series
	// must keep its numbers — the trailing values differ across lines.
	bs = []benchmark{
		{Name: "BenchmarkHyFDWorkers/workers-1"},
		{Name: "BenchmarkHyFDWorkers/workers-2"},
		{Name: "BenchmarkHyFDWorkers/workers-4"},
	}
	stripProcsSuffix(bs)
	for i, want := range []string{"workers-1", "workers-2", "workers-4"} {
		if bs[i].Name != "BenchmarkHyFDWorkers/"+want || bs[i].Procs != 0 {
			t.Errorf("single-core series[%d] = %+v", i, bs[i])
		}
	}

	// A non-numeric tail anywhere disables stripping for the whole run.
	bs = []benchmark{{Name: "BenchmarkA-8"}, {Name: "BenchmarkB/own"}}
	stripProcsSuffix(bs)
	if bs[0].Name != "BenchmarkA-8" || bs[0].Procs != 0 {
		t.Errorf("mixed run stripped anyway: %+v", bs[0])
	}
}
