package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkBusPublish-8   \t 1971642\t   608.5 ns/op\t 392 B/op\t  5 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkBusPublish" || b.Procs != 8 || b.Runs != 1971642 {
		t.Errorf("header fields = %+v", b)
	}
	if b.NsPerOp != 608.5 || b.BytesPerOp == nil || *b.BytesPerOp != 392 ||
		b.AllocsPerOp == nil || *b.AllocsPerOp != 5 {
		t.Errorf("metrics = %+v", b)
	}

	if _, ok := parseBenchLine("BenchmarkBroken-8 notanumber 1 ns/op"); ok {
		t.Error("malformed runs accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoMetrics-8 100"); ok {
		t.Error("line without ns/op accepted")
	}

	// Throughput variant without -benchmem.
	b, ok = parseBenchLine("BenchmarkCSV 500 25000 ns/op 120.00 MB/s")
	if !ok || b.Procs != 0 || b.MBPerSec != 120 || b.BytesPerOp != nil {
		t.Errorf("throughput line = %+v ok=%v", b, ok)
	}
}
