// Benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI and the
// bench-baseline make target can archive and diff benchmark runs
// without extra tooling.
//
//	go test -bench=. -benchmem -run '^$' ./internal/server/ | go run ./cmd/benchjson
//
// The output is an object with the detected goos/goarch/pkg header
// fields and a "benchmarks" array; each entry carries the benchmark
// name (parallelism suffix stripped into "procs"), iteration count,
// and the standard ns/op, B/op, allocs/op, and MB/s metrics when
// present.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "candidates/op")
	// keyed by unit name, so counters benchmarks publish survive into
	// the baseline.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	rep := report{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	stripProcsSuffix(rep.Benchmarks)
	deriveWorkerSpeedups(rep.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// stripProcsSuffix removes the GOMAXPROCS suffix go test appends to
// every benchmark name (Benchmark…-8). The suffix cannot be told apart
// from a trailing number the benchmark itself encodes (workers-4) on a
// per-line basis: go omits it entirely when GOMAXPROCS is 1, so eagerly
// stripping the last "-N" would eat the workers count on a single-core
// host and collapse a whole workers-{1,2,4} series onto one name. But
// within one run the suffix is the SAME on every line — so strip only
// when all names carry an identical trailing number. (A -cpu list run
// mixes suffixes; those names are left intact, which is lossless.)
func stripProcsSuffix(benchmarks []benchmark) {
	if len(benchmarks) == 0 {
		return
	}
	common := -1
	for _, b := range benchmarks {
		i := strings.LastIndex(b.Name, "-")
		if i <= 0 {
			return
		}
		procs, err := strconv.Atoi(b.Name[i+1:])
		if err != nil || (common >= 0 && procs != common) {
			return
		}
		common = procs
	}
	for i := range benchmarks {
		b := &benchmarks[i]
		b.Name = b.Name[:strings.LastIndex(b.Name, "-")]
		b.Procs = common
	}
}

// deriveWorkerSpeedups attaches a "speedup_vs_1w" metric to every
// entry of a worker-count series — benchmarks named ".../workers-N" —
// relating its ns/op to the workers-1 entry of the same series. With
// -count > 1 a series holds repeated entries per worker count; the
// baseline is the mean ns/op of all its workers-1 entries, so the
// derived field stays stable across repetition counts. Entries without
// a workers-1 sibling are left untouched.
func deriveWorkerSpeedups(benchmarks []benchmark) {
	const marker = "/workers-"
	base := make(map[string]struct {
		sum float64
		n   int
	})
	for _, b := range benchmarks {
		i := strings.LastIndex(b.Name, marker)
		if i < 0 || b.Name[i+len(marker):] != "1" {
			continue
		}
		agg := base[b.Name[:i]]
		agg.sum += b.NsPerOp
		agg.n++
		base[b.Name[:i]] = agg
	}
	for i := range benchmarks {
		b := &benchmarks[i]
		j := strings.LastIndex(b.Name, marker)
		if j < 0 {
			continue
		}
		if _, err := strconv.Atoi(b.Name[j+len(marker):]); err != nil {
			continue
		}
		agg, ok := base[b.Name[:j]]
		if !ok || agg.n == 0 || b.NsPerOp <= 0 {
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics["speedup_vs_1w"] = (agg.sum / float64(agg.n)) / b.NsPerOp
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkBusPublish-8   1971642   608.5 ns/op   392 B/op   5 allocs/op
//
// The name is kept verbatim; the procs suffix is resolved afterwards
// across the whole run by stripProcsSuffix.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return benchmark{}, false
	}
	var b benchmark
	b.Name = fields[0]
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b.Runs = runs
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		case "MB/s":
			b.MBPerSec = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, b.NsPerOp > 0
}
