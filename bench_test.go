package normalize

// This file regenerates the paper's evaluation as Go benchmarks — one
// benchmark (family) per table and figure of Section 8, plus ablation
// benchmarks for the design decisions listed in DESIGN.md §6. The
// cmd/evaluate binary prints the same experiments as formatted tables;
// EXPERIMENTS.md records paper-vs-measured.
//
// Dataset inputs and discovered FD sets are cached across benchmarks,
// so a full `go test -bench=. -benchmem` run stays in the minutes.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"normalize/internal/bitset"
	"normalize/internal/closure"
	"normalize/internal/core"
	"normalize/internal/datagen"
	"normalize/internal/delta"
	"normalize/internal/discovery/dfd"
	"normalize/internal/discovery/hyfd"
	"normalize/internal/discovery/tane"
	"normalize/internal/discovery/ucc"
	"normalize/internal/eval"
	"normalize/internal/fd"
	"normalize/internal/keys"
	"normalize/internal/observe"
	"normalize/internal/plicache"
	"normalize/internal/relation"
	"normalize/internal/scoring"
	"normalize/internal/settrie"
	"normalize/internal/violation"
)

// mustDS adapts a (Dataset, error) generator return for use in a
// benchmark expression, failing the benchmark on a generation error.
func mustDS(tb testing.TB) func(*datagen.Dataset, error) *datagen.Dataset {
	return func(ds *datagen.Dataset, err error) *datagen.Dataset {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
		return ds
	}
}

// benchCache lazily generates each dataset and its discovered FD cover
// exactly once per `go test` process.
type benchEntry struct {
	once sync.Once
	ds   *datagen.Dataset
	fds  *fd.Set
}

var benchCache = map[string]*benchEntry{}
var benchCacheMu sync.Mutex

func cached(name string, spec eval.Spec) *benchEntry {
	benchCacheMu.Lock()
	e, ok := benchCache[name]
	if !ok {
		e = &benchEntry{}
		benchCache[name] = e
	}
	benchCacheMu.Unlock()
	e.once.Do(func() {
		ds, err := spec.Gen()
		if err != nil {
			panic(err)
		}
		e.ds = ds
		e.fds = hyfd.Discover(e.ds.Denormalized, hyfd.Options{MaxLhs: spec.MaxLhs, Parallel: true})
	})
	return e
}

func specByName(name string) eval.Spec {
	for _, s := range eval.DefaultSpecs() {
		if s.Name == name {
			return s
		}
	}
	panic("unknown spec " + name)
}

// --- Table 3, column "FD Disc." -------------------------------------

// BenchmarkTable3Discovery measures component (1) on the Table 3
// datasets that finish a discovery per benchmark iteration quickly;
// the full six-dataset run is `cmd/evaluate -exp table3`.
func BenchmarkTable3Discovery(b *testing.B) {
	for _, name := range []string{"Horse", "Plista", "TPC-H", "MusicBrainz"} {
		spec := specByName(name)
		ds := cached(name, spec).ds
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hyfd.Discover(ds.Denormalized, hyfd.Options{MaxLhs: spec.MaxLhs, Parallel: true})
			}
		})
	}
}

// --- Table 3, columns "Closure_impr" / "Closure_opt" -----------------

func benchClosure(b *testing.B, algo func(*fd.Set)) {
	for _, name := range []string{"Horse", "Plista", "Amalgam1", "Flight", "MusicBrainz", "TPC-H"} {
		entry := cached(name, specByName(name))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := entry.fds.Clone()
				b.StartTimer()
				algo(in)
			}
		})
	}
}

func BenchmarkTable3ClosureImproved(b *testing.B) {
	benchClosure(b, func(s *fd.Set) { closure.ImprovedParallel(s, 0) })
}

func BenchmarkTable3ClosureOptimized(b *testing.B) {
	benchClosure(b, func(s *fd.Set) { closure.OptimizedParallel(s, 0) })
}

// --- Table 3, columns "Key Der." / "Viol. Iden." ---------------------

func BenchmarkTable3KeyDerivation(b *testing.B) {
	for _, name := range []string{"Horse", "Plista", "Amalgam1", "Flight", "MusicBrainz", "TPC-H"} {
		entry := cached(name, specByName(name))
		extended := closure.OptimizedParallel(entry.fds.Clone(), 0)
		all := bitset.Full(extended.NumAttrs)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				keys.Derive(extended, all)
			}
		})
	}
}

func BenchmarkTable3ViolationDetection(b *testing.B) {
	for _, name := range []string{"Horse", "Plista", "Amalgam1", "Flight", "MusicBrainz", "TPC-H"} {
		entry := cached(name, specByName(name))
		extended := closure.OptimizedParallel(entry.fds.Clone(), 0)
		all := bitset.Full(extended.NumAttrs)
		derived := keys.Derive(extended, all)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				violation.Detect(violation.Input{
					FDs: extended, Keys: derived, RelAttrs: all,
				})
			}
		})
	}
}

// --- §8.2 text: naive closure comparison -----------------------------

// BenchmarkClosureNaive measures Algorithm 1 on bounded FD samples; the
// cubic baseline is exactly why the paper stopped running it beyond the
// small datasets.
func BenchmarkClosureNaive(b *testing.B) {
	for _, name := range []string{"Amalgam1", "Horse", "Plista"} {
		entry := cached(name, specByName(name))
		sample := eval.SampleFDs(entry.fds, 2000, 1)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := sample.Clone()
				b.StartTimer()
				closure.Naive(in)
			}
		})
	}
}

// --- Figure 2: closure runtime vs number of input FDs ----------------

func BenchmarkFigure2(b *testing.B) {
	entry := cached("MusicBrainz", specByName("MusicBrainz"))
	for _, frac := range []int{25, 50, 75, 100} {
		n := entry.fds.Len() * frac / 100
		sample := eval.SampleFDs(entry.fds, n, int64(frac))
		b.Run("improved/"+itoa(frac)+"pct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := sample.Clone()
				b.StartTimer()
				closure.ImprovedParallel(in, 0)
			}
		})
		b.Run("optimized/"+itoa(frac)+"pct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := sample.Clone()
				b.StartTimer()
				closure.OptimizedParallel(in, 0)
			}
		})
	}
}

// --- Figures 3 and 4: end-to-end schema reconstruction ---------------

func BenchmarkFigure3TPCH(b *testing.B) {
	ds := mustDS(b)(datagen.TPCH(0.0002, 1))
	for i := 0; i < b.N; i++ {
		if _, err := core.NormalizeRelation(ds.Denormalized, core.Options{MaxLhs: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3TPCHConstrained runs the same workload under a
// -max-memory ceiling of 10 MiB — just above the run's non-evictable
// floor (the FD cover of the 52-attribute denormalized relation is
// ~8.4 MiB and cannot be evicted), so the run completes exactly, with
// every partition held delta-varint compressed in the governed PLI
// store and decoded on demand. The delta against BenchmarkFigure3TPCH
// is the price of memory governance when nothing needs to reach disk;
// BenchmarkPLIStore/spill-reload-cycle prices the disk path itself.
func BenchmarkFigure3TPCHConstrained(b *testing.B) {
	ds := mustDS(b)(datagen.TPCH(0.0002, 1))
	spillDir := b.TempDir()
	for i := 0; i < b.N; i++ {
		res, err := core.NormalizeRelation(ds.Denormalized, core.Options{
			MaxLhs:   3,
			SpillDir: spillDir,
			Budget:   core.Budget{MaxMemoryBytes: 10 << 20},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Degradations) != 0 {
			b.Fatalf("constrained run degraded: %+v", res.Degradations)
		}
	}
}

func BenchmarkFigure4MusicBrainz(b *testing.B) {
	ds := mustDS(b)(datagen.MusicBrainz(12, 1))
	for i := 0; i < b.N; i++ {
		if _, err := core.NormalizeRelation(ds.Denormalized, core.Options{MaxLhs: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------

// BenchmarkAblationTrieVsScan isolates design decision 1: the improved
// algorithm's per-attribute LHS tries versus the naive full scan, on
// identical inputs.
func BenchmarkAblationTrieVsScan(b *testing.B) {
	entry := cached("Horse", specByName("Horse"))
	sample := eval.SampleFDs(entry.fds, 1500, 7)
	b.Run("scan-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			in := sample.Clone()
			b.StartTimer()
			closure.Naive(in)
		}
	})
	b.Run("trie-improved", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			in := sample.Clone()
			b.StartTimer()
			closure.Improved(in)
		}
	})
}

// BenchmarkAblationParallelClosure isolates design decision 4: worker
// counts for the parallel optimized closure.
func BenchmarkAblationParallelClosure(b *testing.B) {
	entry := cached("Plista", specByName("Plista"))
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := entry.fds.Clone()
				b.StartTimer()
				closure.OptimizedParallel(in, workers)
			}
		})
	}
}

// BenchmarkAblationBloomVsExact isolates design decision 5: the Bloom
// estimate versus exact distinct counting in the duplication score.
func BenchmarkAblationBloomVsExact(b *testing.B) {
	ds := mustDS(b)(datagen.TPCH(0.0005, 1))
	rel := ds.Denormalized
	f := &fd.FD{
		Lhs: bitset.Of(rel.NumAttrs(), 1),
		Rhs: bitset.Of(rel.NumAttrs(), 2, 3, 4),
	}
	b.Run("bloom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scoring.DuplicationScore(rel, f, scoring.EstimateDistinctBloom)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scoring.DuplicationScore(rel, f, scoring.EstimateDistinctExact)
		}
	})
}

// BenchmarkAblationKeyTrie isolates design decision 6: the key prefix
// tree of Algorithm 4 versus a linear scan over the key set.
func BenchmarkAblationKeyTrie(b *testing.B) {
	entry := cached("Flight", specByName("Flight"))
	extended := closure.OptimizedParallel(entry.fds.Clone(), 0)
	all := bitset.Full(extended.NumAttrs)
	derived := keys.Derive(extended, all)
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trie := &settrie.Trie{}
			for _, k := range derived {
				trie.Insert(k)
			}
			for _, f := range extended.FDs {
				trie.ContainsSubsetOf(f.Lhs)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range extended.FDs {
				for _, k := range derived {
					if k.IsSubsetOf(f.Lhs) {
						break
					}
				}
			}
		}
	})
}

// BenchmarkAblationDiscoveryAlgorithms compares the three FD discovery
// algorithms on the same mid-size input (bounded LHS keeps the
// lattice-based algorithms comparable).
func BenchmarkAblationDiscoveryAlgorithms(b *testing.B) {
	rel := mustDS(b)(datagen.TPCH(0.0001, 1)).Denormalized
	b.Run("hyfd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hyfd.Discover(rel, hyfd.Options{MaxLhs: 2})
		}
	})
	b.Run("tane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tane.Discover(rel, tane.Options{MaxLhs: 2})
		}
	})
	b.Run("dfd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dfd.Discover(rel, dfd.Options{MaxLhs: 2})
		}
	})
}

// BenchmarkAblationUCCAlgorithms compares level-wise and hybrid UCC
// discovery (component 7's substrate).
func BenchmarkAblationUCCAlgorithms(b *testing.B) {
	rel := mustDS(b)(datagen.TPCH(0.0001, 1)).Denormalized.ProjectSet("slice",
		bitset.Of(52, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)).Dedup()
	b.Run("levelwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ucc.Discover(rel, ucc.Options{})
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ucc.DiscoverHybrid(rel, ucc.Options{})
		}
	})
}

// --- Parallel validation + shared substrate ---------------------------

// BenchmarkHyFDWorkers measures discovery with explicit validation
// worker counts. On a single-core host the counts coincide; on
// multi-core machines this is the speedup curve of the validation pool.
func BenchmarkHyFDWorkers(b *testing.B) {
	rel := mustDS(b)(datagen.TPCH(0.0002, 1)).Denormalized
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hyfd.Discover(rel, hyfd.Options{MaxLhs: 3, Parallel: true, Workers: workers})
			}
		})
	}
}

// BenchmarkHyFDSubstrate isolates the shared-substrate win: discovery
// that builds its own dictionary encoding and column PLIs versus
// discovery handed a pre-built plicache substrate (as the pipeline does
// for every table it processes).
func BenchmarkHyFDSubstrate(b *testing.B) {
	rel := mustDS(b)(datagen.TPCH(0.0002, 1)).Denormalized
	b.Run("own", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hyfd.Discover(rel, hyfd.Options{MaxLhs: 3, Parallel: true})
		}
	})
	b.Run("shared", func(b *testing.B) {
		sub, err := plicache.Build(context.Background(), rel)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hyfd.Discover(rel, hyfd.Options{MaxLhs: 3, Parallel: true, Substrate: sub})
		}
	})
}

// BenchmarkNormalizeWorkers measures the full pipeline — discovery,
// closure, key derivation, decomposition, key selection — under
// explicit worker counts, exercising the substrate cache and the
// concurrent worklist pre-analysis end to end.
func BenchmarkNormalizeWorkers(b *testing.B) {
	ds := mustDS(b)(datagen.TPCH(0.0002, 1))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NormalizeRelation(ds.Denormalized, core.Options{MaxLhs: 3, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- End-to-end pipeline ----------------------------------------------

// BenchmarkNormalizeEndToEnd measures the whole pipeline on the paper's
// running example and a mid-size TPC-H instance.
func BenchmarkNormalizeEndToEnd(b *testing.B) {
	address, err := NewRelation("address",
		[]string{"First", "Last", "Postcode", "City", "Mayor"},
		[][]string{
			{"Thomas", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Sarah", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Peter", "Smith", "60329", "Frankfurt", "Feldmann"},
			{"Jasmine", "Cone", "01069", "Dresden", "Orosz"},
			{"Mike", "Cone", "14482", "Potsdam", "Jakobs"},
			{"Thomas", "Moore", "60329", "Frankfurt", "Feldmann"},
		})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("address", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Normalize(address, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Streaming ingest vs legacy row loading --------------------------

// redundantCSV builds a denormalized CSV in the regime the paper
// targets: many rows drawn from small per-column value pools, i.e.
// the redundancy that normalization removes. Dictionary encoding sees
// almost no new distinct values after warm-up, so a streaming reader
// should intern next to nothing per row.
func redundantCSV(rows int) []byte {
	var buf bytes.Buffer
	buf.WriteString("order_id,customer,region,product,category,warehouse,status,priority\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&buf, "order-%d,customer-%d,region-%d,product-%d,category-%d,warehouse-%d,status-%d,priority-%d\n",
			i%500, i%200, i%7, (i*13)%150, i%25, i%12, i%5, i%3)
	}
	return buf.Bytes()
}

// BenchmarkIngest compares the streaming columnar reader against the
// legacy path (ReadCSV into [][]string rows, then dictionary-encode)
// on the same bytes — both ends produce the identical substrate, so
// the delta is pure read-path cost. SetBytes reports MB/s; -benchmem
// allocations divide by the logged row count for allocs/row.
//
// Two input shapes: "redundant" is low-cardinality denormalized data
// (the paper's motivating case — here the legacy reader pays ~2
// allocations per row for the record and its backing strings, while
// the streaming reader amortizes to near zero), and "tpch" is the
// denormalized TPC-H join whose high-cardinality columns force both
// readers to materialize each distinct value.
func BenchmarkIngest(b *testing.B) {
	ds := mustDS(b)(datagen.TPCH(0.001, 1))
	var buf bytes.Buffer
	if err := ds.Denormalized.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	inputs := []struct {
		name string
		rows int
		data []byte
	}{
		{"redundant", 50000, redundantCSV(50000)},
		{"tpch", ds.Denormalized.NumRows(), buf.Bytes()},
	}

	for _, in := range inputs {
		b.Run(in.name, func(b *testing.B) {
			b.Logf("input: %d rows, %d bytes", in.rows, len(in.data))
			b.Run("legacy", func(b *testing.B) {
				b.SetBytes(int64(len(in.data)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rel, err := relation.ReadCSV(in.name, bytes.NewReader(in.data))
					if err != nil {
						b.Fatal(err)
					}
					rel.Columnarize()
				}
			})
			for _, w := range []int{1, 4} {
				b.Run(fmt.Sprintf("streaming-w%d", w), func(b *testing.B) {
					b.SetBytes(int64(len(in.data)))
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := IngestCSV(context.Background(), in.name,
							bytes.NewReader(in.data), IngestOptions{Workers: w}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// --- Incremental delta normalization ----------------------------------

// counterObserver sums one named counter across all stages.
type counterObserver struct {
	name  string
	total int64
}

func (c *counterObserver) StageStart(observe.Stage)                 {}
func (c *counterObserver) StageFinish(observe.Stage, time.Duration) {}
func (c *counterObserver) Counter(_ observe.Stage, name string, delta int64) {
	if name == c.name {
		c.total += delta
	}
}

// BenchmarkDeltaAppend pits the incremental delta path against a full
// re-run for a 1% append to the TPC-H universal relation — the delta
// plane's headline scenario. Both series report their candidate
// validations per op (candidates/op), so the JSON baseline records the
// wall-time ratio AND the work ratio the counters prove.
func BenchmarkDeltaAppend(b *testing.B) {
	full := mustDS(b)(datagen.TPCH(0.001, 1)).Denormalized
	rows := full.Rows()
	cut := len(rows) - len(rows)/100 // last 1% of rows are the delta
	base := relation.MustNew(full.Name, full.Attrs, rows[:cut])
	opts := core.Options{MaxLhs: 3, Workers: 1}

	parent, err := core.NormalizeRelation(base, opts)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full", func(b *testing.B) {
		obs := &counterObserver{name: observe.CounterCandidatesChecked}
		o := opts
		o.Observer = obs
		for i := 0; i < b.N; i++ {
			if _, err := core.NormalizeRelation(full, o); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(obs.total)/float64(b.N), "candidates/op")
	})
	b.Run("delta", func(b *testing.B) {
		obs := &counterObserver{name: observe.CounterDeltaFDsChecked}
		o := opts
		o.Observer = obs
		cfg := delta.Config{Options: o}
		for i := 0; i < b.N; i++ {
			if _, _, err := delta.Normalize(context.Background(), base, rows[cut:], parent, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(obs.total)/float64(b.N), "candidates/op")
	})
}
