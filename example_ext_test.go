package normalize_test

import (
	"fmt"
	"log"

	"normalize"
)

// ExampleNormalize4NF splits the classic course/teacher/book cross
// product — BCNF-conform but redundant — by its multivalued dependency.
func ExampleNormalize4NF() {
	rel, _ := normalize.NewRelation("ctb",
		[]string{"course", "teacher", "book"},
		[][]string{
			{"db", "smith", "codd"},
			{"db", "smith", "date"},
			{"db", "jones", "codd"},
			{"db", "jones", "date"},
			{"ai", "lee", "norvig"},
			{"ml", "smith", "codd"},
		})

	parts, err := normalize.Normalize4NF(rel, normalize.FourNFOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range parts {
		fmt.Println(p.Name, p.Attrs)
	}
	// Output:
	// ctb_course [course teacher]
	// ctb_course2 [course book]
}

// ExampleSuggestForeignKeys proposes the customer → nation foreign key
// from inclusion dependencies after normalizing two separate relations.
func ExampleSuggestForeignKeys() {
	nation, _ := normalize.NewRelation("nation",
		[]string{"nationkey", "n_name"},
		[][]string{{"0", "FRANCE"}, {"1", "GERMANY"}})
	customer, _ := normalize.NewRelation("customer",
		[]string{"custkey", "c_name", "nationkey"},
		[][]string{{"10", "Ann", "0"}, {"11", "Bob", "1"}, {"12", "Cleo", "0"}})

	res, err := normalize.NormalizeAll([]*normalize.Relation{nation, customer}, normalize.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, fk := range normalize.SuggestForeignKeys(res.Tables) {
		fmt.Printf("%s.%s -> %s.%s\n",
			fk.IND.Dependent.Relation, fk.IND.Dependent.Attribute,
			fk.IND.Referenced.Relation, fk.IND.Referenced.Attribute)
	}
	// Output:
	// customer.nationkey -> nation.nationkey
}

// ExampleDiscoverKeys lists the minimal candidate keys of the paper's
// address relation.
func ExampleDiscoverKeys() {
	rel, _ := normalize.NewRelation("address",
		[]string{"First", "Last", "Postcode", "City", "Mayor"},
		[][]string{
			{"Thomas", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Sarah", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Peter", "Smith", "60329", "Frankfurt", "Feldmann"},
			{"Jasmine", "Cone", "01069", "Dresden", "Orosz"},
			{"Mike", "Cone", "14482", "Potsdam", "Jakobs"},
			{"Thomas", "Moore", "60329", "Frankfurt", "Feldmann"},
		})

	for _, key := range normalize.DiscoverKeys(rel) {
		names := []string{}
		key.ForEach(func(e int) bool {
			names = append(names, rel.Attrs[e])
			return true
		})
		fmt.Println(names)
	}
	// Output:
	// [First Last]
	// [First Postcode]
	// [First City]
	// [First Mayor]
}
