// Tpch reproduces the paper's Figure 3 scenario: the eight TPC-H
// relations are generated, denormalized into one 52-attribute universal
// relation by joining along the foreign keys, and handed to Normalize.
// The automatic BCNF normalization then reconstructs the original
// snowflake schema almost perfectly — and makes the same two
// "interesting flaws" the paper observes (LINEITEM split slightly too
// far; shippriority lands next to the region because the data supports
// it).
package main

import (
	"flag"
	"fmt"
	"log"

	"normalize"
)

func main() {
	scale := flag.Float64("scale", 0.0005, "TPC-H scale factor (1.0 = official SF1)")
	seed := flag.Int64("seed", 1, "generator seed")
	maxLhs := flag.Int("maxlhs", 3, "prune FDs with larger left-hand sides (0 = none; Section 4.3)")
	flag.Parse()

	ds, err := normalize.GenerateTPCH(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Original TPC-H schema:")
	for _, r := range ds.Original {
		fmt.Printf("  %-9s %3d attributes, %6d rows\n", r.Name, r.NumAttrs(), r.NumRows())
	}
	fmt.Printf("\nDenormalized universal relation: %d attributes × %d rows.\n\n",
		ds.Denormalized.NumAttrs(), ds.Denormalized.NumRows())

	// Small instances of wide relations have combinatorially many
	// coincidental FDs; the paper's max-LHS pruning (Section 4.3) keeps
	// discovery tractable without losing any key or foreign-key
	// candidate — semantically meaningful constraints have short LHSs.
	res, err := normalize.Normalize(ds.Denormalized, normalize.Options{MaxLhs: *maxLhs})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Normalize decomposed the universal relation into %d BCNF tables\n", len(res.Tables))
	fmt.Printf("(discovery %v, closure %v, %d FDs, %d decompositions):\n\n",
		res.Stats.Discovery.Round(1e6), res.Stats.Closure.Round(1e6),
		res.Stats.NumFDs, res.Stats.Decompositions)
	for _, t := range res.Tables {
		fmt.Printf("  %s  (%d rows)\n", t, t.Data.NumRows())
		for _, fk := range t.ForeignKeys {
			fmt.Printf("      FK (%v) → %s\n", t.AttrNames(fk.Attrs), fk.RefTable)
		}
	}

	// Compare against the gold standard: which original relations were
	// recovered as an exact attribute set?
	fmt.Println("\nReconstruction vs. the original schema:")
	for _, orig := range ds.Original {
		attrs := map[string]bool{}
		for _, a := range orig.Attrs {
			attrs[a] = true
		}
		best, bestOverlap := "", 0.0
		for _, t := range res.Tables {
			names := t.AttrNames(t.Attrs)
			inter := 0
			for _, n := range names {
				if attrs[n] {
					inter++
				}
			}
			overlap := float64(inter) / float64(len(attrs)+len(names)-inter)
			if overlap > bestOverlap {
				best, bestOverlap = t.Name, overlap
			}
		}
		fmt.Printf("  %-9s → %-24s (Jaccard %.2f)\n", orig.Name, best, bestOverlap)
	}
}
