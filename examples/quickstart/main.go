// Quickstart reproduces the paper's running example (Section 1): the
// address relation of Table 1 is profiled for functional dependencies
// and normalized into the BCNF schema of Table 2, removing the
// redundant city and mayor values.
package main

import (
	"fmt"
	"log"

	"normalize"
)

func main() {
	rel, err := normalize.NewRelation("address",
		[]string{"First", "Last", "Postcode", "City", "Mayor"},
		[][]string{
			{"Thomas", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Sarah", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Peter", "Smith", "60329", "Frankfurt", "Feldmann"},
			{"Jasmine", "Cone", "01069", "Dresden", "Orosz"},
			{"Mike", "Cone", "14482", "Potsdam", "Jakobs"},
			{"Thomas", "Moore", "60329", "Frankfurt", "Feldmann"},
		})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 on its own: what does the data say?
	fds := normalize.DiscoverFDs(rel, normalize.HyFD, 0)
	fmt.Printf("The address relation holds %d minimal functional dependencies:\n\n", fds.CountSingle())
	fmt.Println(fds.Format(rel.Attrs))

	// The whole pipeline, fully automatic.
	res, err := normalize.Normalize(rel, normalize.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BCNF schema:")
	values := 0
	for _, t := range res.Tables {
		fmt.Printf("  %s  (%d rows)\n", t, t.Data.NumRows())
		for _, fk := range t.ForeignKeys {
			fmt.Printf("    foreign key (%v) references %s\n",
				t.AttrNames(fk.Attrs), fk.RefTable)
		}
		values += t.Data.NumRows() * t.Data.NumAttrs()
	}
	fmt.Printf("\nStored values: 36 before, %d after normalization.\n\n", values)

	fmt.Println("DDL:")
	fmt.Println(normalize.DDL(res.Tables))
}
