// Fournf demonstrates the 4NF extension sketched in Section 6 of the
// paper: the classic course/teacher/book relation stores two
// independent facts as a cross product. No functional dependency is
// violated — BCNF keeps the relation — but the multivalued dependency
// course ↠ teacher | book violates 4NF and splits it into two clean
// relations.
package main

import (
	"fmt"
	"log"

	"normalize"
)

func main() {
	rel, err := normalize.NewRelation("ctb",
		[]string{"course", "teacher", "book"},
		[][]string{
			{"db", "smith", "codd"},
			{"db", "smith", "date"},
			{"db", "jones", "codd"},
			{"db", "jones", "date"},
			{"ai", "lee", "norvig"},
			{"ai", "lee", "russell"},
			{"ml", "smith", "codd"},
		})
	if err != nil {
		log.Fatal(err)
	}

	// BCNF normalization finds nothing to do: every FD's LHS is a key.
	res, err := normalize.Normalize(rel, normalize.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BCNF keeps the relation in one piece: %d table(s), %d values stored.\n",
		len(res.Tables), rel.NumRows()*rel.NumAttrs())

	// 4NF sees the multivalued dependency and splits.
	parts, err := normalize.Normalize4NF(rel, normalize.FourNFOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4NF decomposes it into %d relations:\n", len(parts))
	values := 0
	for _, p := range parts {
		fmt.Printf("  %s%v  (%d rows)\n", p.Name, p.Attrs, p.NumRows())
		values += p.NumRows() * p.NumAttrs()
		if err := normalize.Verify4NF(p, normalize.FourNFOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nStored values: %d before, %d after — the cross product is gone.\n",
		rel.NumRows()*rel.NumAttrs(), values)
}
