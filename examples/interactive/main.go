// Interactive demonstrates the user-in-the-loop mode of Normalize
// (the "(semi-)automatic" of the paper's title): at every decomposition
// the ranked violating FDs are printed and the user picks one — or
// rejects them all to keep the relation as is. Reads choices from
// stdin; run it with a pipe for scripted sessions, e.g.
//
//	printf "1\n0\n0\n" | go run ./examples/interactive
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"normalize"
)

func main() {
	rel, err := normalize.NewRelation("address",
		[]string{"First", "Last", "Postcode", "City", "Mayor"},
		[][]string{
			{"Thomas", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Sarah", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Peter", "Smith", "60329", "Frankfurt", "Feldmann"},
			{"Jasmine", "Cone", "01069", "Dresden", "Orosz"},
			{"Mike", "Cone", "14482", "Potsdam", "Jakobs"},
			{"Thomas", "Moore", "60329", "Frankfurt", "Feldmann"},
		})
	if err != nil {
		log.Fatal(err)
	}

	in := bufio.NewScanner(os.Stdin)
	decider := normalize.FuncDecider{
		ViolatingFD: func(t *normalize.Table, ranked []normalize.RankedFD) (int, *normalize.AttrSet) {
			fmt.Printf("\nRelation %s violates BCNF. Ranked decomposition candidates:\n", t.Name)
			for i, rf := range ranked {
				lhs := strings.Join(t.AttrNames(rf.FD.Lhs), ",")
				rhs := strings.Join(t.AttrNames(rf.FD.Rhs), ",")
				shared := ""
				if !rf.SharedRhs.IsEmpty() {
					shared = fmt.Sprintf("  [rhs also in other FDs: %v]", t.AttrNames(rf.SharedRhs))
				}
				fmt.Printf("  [%d] %s -> %s  (score %.3f)%s\n", i, lhs, rhs, rf.Score, shared)
			}
			fmt.Print("Pick an index to split, or -1 to keep the relation: ")
			return readChoice(in, len(ranked)), nil
		},
		PrimaryKey: func(t *normalize.Table, ranked []normalize.RankedKey) int {
			fmt.Printf("\nRelation %s needs a primary key. Candidates:\n", t.Name)
			for i, rk := range ranked {
				fmt.Printf("  [%d] %v  (score %.3f)\n", i, t.AttrNames(rk.Key), rk.Score)
			}
			fmt.Print("Pick an index, or -1 for none: ")
			return readChoice(in, len(ranked))
		},
	}

	// The recording observer captures per-stage spans and work counters;
	// the violating-fd-selection span includes the time spent waiting for
	// the user's choices, so the summary shows where an interactive
	// session actually went.
	rec := normalize.NewRecordingObserver()
	res, err := normalize.Normalize(rel, normalize.Options{Decider: decider, Observer: rec})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFinal schema:")
	for _, t := range res.Tables {
		fmt.Printf("  %s\n", t)
	}

	fmt.Println("\nPer-stage telemetry:")
	rec.Summary(os.Stdout)
}

func readChoice(in *bufio.Scanner, n int) int {
	for in.Scan() {
		v, err := strconv.Atoi(strings.TrimSpace(in.Text()))
		if err == nil && v < n {
			fmt.Println(v)
			return v
		}
		fmt.Printf("invalid choice, enter -1..%d: ", n-1)
	}
	// EOF: behave like the automatic mode.
	fmt.Println("0 (auto)")
	return 0
}
