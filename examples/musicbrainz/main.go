// Musicbrainz reproduces the paper's Figure 4 scenario: a synthetic
// music encyclopedia with the same eleven-table core and n:m topology
// as MusicBrainz is denormalized into one universal relation and
// normalized back. Because the original schema is not snowflake-shaped,
// Normalize cannot recover it exactly — it invents a fact-table-like
// top relation for the many-to-many relationships, just as the paper
// observes.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"normalize"
)

func main() {
	artists := flag.Int("artists", 12, "number of artists (scales everything else)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ds, err := normalize.GenerateMusicBrainz(*artists, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Original MusicBrainz core schema:")
	for _, r := range ds.Original {
		fmt.Printf("  %-19s %2d attributes, %5d rows\n", r.Name, r.NumAttrs(), r.NumRows())
	}
	fmt.Printf("\nDenormalized universal relation: %d attributes × %d rows\n",
		ds.Denormalized.NumAttrs(), ds.Denormalized.NumRows())
	fmt.Println("(the n:m link tables blow the join up beyond the track count).")

	res, err := normalize.Normalize(ds.Denormalized, normalize.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nNormalize produced %d BCNF tables:\n\n", len(res.Tables))
	tables := res.Tables
	sort.Slice(tables, func(i, j int) bool {
		return tables[i].Attrs.Cardinality() > tables[j].Attrs.Cardinality()
	})
	for _, t := range tables {
		fmt.Printf("  %s  (%d rows)\n", t, t.Data.NumRows())
	}

	// The table with the widest composite key plays the fact-table
	// role: it ties the n:m participants together.
	fact := tables[0]
	for _, t := range tables {
		if t.PrimaryKey != nil && (fact.PrimaryKey == nil ||
			t.PrimaryKey.Cardinality() > fact.PrimaryKey.Cardinality()) {
			fact = t
		}
	}
	fmt.Printf("\nTop-level relation (the invented \"fact table\"): %s\n", fact)
	fmt.Println("It represents the n:m relationships the snowflake-shaped BCNF")
	fmt.Println("result cannot express as separate link tables.")
}
