package normalize

import "normalize/internal/datagen"

// Dataset bundles a generated evaluation dataset: the gold-standard
// relations (when the dataset is a denormalized join) and the universal
// relation the normalizer runs on.
type Dataset = datagen.Dataset

// GenerateTPCH builds the eight TPC-H relations at the given scale
// factor (1.0 = the official SF1 cardinalities) and their denormalized
// 52-attribute universal relation — the preparation step of the paper's
// effectiveness evaluation (Figure 3). The error reports a failed
// denormalizing join.
func GenerateTPCH(scaleFactor float64, seed int64) (*Dataset, error) {
	return datagen.TPCH(scaleFactor, seed)
}

// GenerateMusicBrainz builds a synthetic music encyclopedia with the
// same 11-table, non-snowflake core as the MusicBrainz selection the
// paper denormalizes (Figure 4). The scale parameter is the number of
// artists. The error reports a failed denormalizing join.
func GenerateMusicBrainz(artists int, seed int64) (*Dataset, error) {
	return datagen.MusicBrainz(artists, seed)
}

// GenerateHorse, GeneratePlista, GenerateAmalgam1, and GenerateFlight
// build synthetic stand-ins for the efficiency datasets of the paper's
// Table 3, matching their attribute and record counts.
func GenerateHorse(seed int64) *Dataset { return datagen.Horse(seed) }

// GeneratePlista builds the Plista stand-in (63 attributes × 1000 rows).
func GeneratePlista(seed int64) *Dataset { return datagen.Plista(seed) }

// GenerateAmalgam1 builds the Amalgam1 stand-in (87 attributes × 50 rows).
func GenerateAmalgam1(seed int64) *Dataset { return datagen.Amalgam1(seed) }

// GenerateFlight builds the Flight stand-in (109 attributes × 1000 rows).
func GenerateFlight(seed int64) *Dataset { return datagen.Flight(seed) }
