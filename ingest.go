package normalize

import (
	"context"
	"io"

	"normalize/internal/budget"
	"normalize/internal/ingest"
)

// IngestOptions configures the streaming CSV reader. The zero value
// reads strictly and serially with default chunking and no memory
// ceiling.
type IngestOptions struct {
	// Lenient skips malformed rows (returned as RowErrors) instead of
	// aborting, like ReadCSVLenient.
	Lenient bool
	// Workers is the tokenizer parallelism; <= 0 means all CPUs. The
	// result is byte-identical at any worker count.
	Workers int
	// ChunkBytes is the streaming read granularity; <= 0 picks a
	// sensible default.
	ChunkBytes int
	// MaxMemoryBytes caps the ingest working set (read buffers,
	// dictionaries, code blocks, and the final encoded columns). Under
	// pressure, completed code blocks spill to a temporary file instead
	// of growing the heap; the final encoded substrate must still fit.
	// 0 means unlimited.
	MaxMemoryBytes int64
	// SpillDir is where spill files are created; empty means the OS
	// temp directory.
	SpillDir string
	// Observer receives ingest stage events and counters (bytes read,
	// chunks, rows encoded, spill events).
	Observer Observer
}

func (o IngestOptions) internal() ingest.Options {
	return ingest.Options{
		Lenient:    o.Lenient,
		Workers:    o.Workers,
		ChunkBytes: o.ChunkBytes,
		Budget:     budget.NewTracker(0, o.MaxMemoryBytes),
		Observer:   o.Observer,
		SpillDir:   o.SpillDir,
	}
}

// IngestCSV streams a relation from r without materializing rows: the
// input is dictionary-encoded into the pipeline's columnar substrate
// as it is read, in fixed-size chunks, optionally in parallel and
// under a memory ceiling. The result is identical to ReadCSV (or
// ReadCSVLenient when opts.Lenient) — same values, same encoding, same
// errors — while allocating far less and never holding the raw CSV in
// memory. The skipped slice is non-nil only in lenient mode.
func IngestCSV(ctx context.Context, name string, r io.Reader, opts IngestOptions) (*Relation, []RowError, error) {
	return ingest.ReadCSV(ctx, name, r, opts.internal())
}

// IngestCSVFile is IngestCSV over a file, named after the file's base
// name like ReadCSVFile.
func IngestCSVFile(ctx context.Context, path string, opts IngestOptions) (*Relation, []RowError, error) {
	return ingest.ReadCSVFile(ctx, path, opts.internal())
}
