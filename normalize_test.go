package normalize

import (
	"strings"
	"testing"
)

func addressRelation(t *testing.T) *Relation {
	t.Helper()
	rel, err := NewRelation("address",
		[]string{"First", "Last", "Postcode", "City", "Mayor"},
		[][]string{
			{"Thomas", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Sarah", "Miller", "14482", "Potsdam", "Jakobs"},
			{"Peter", "Smith", "60329", "Frankfurt", "Feldmann"},
			{"Jasmine", "Cone", "01069", "Dresden", "Orosz"},
			{"Mike", "Cone", "14482", "Potsdam", "Jakobs"},
			{"Thomas", "Moore", "60329", "Frankfurt", "Feldmann"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestPublicAPINormalize(t *testing.T) {
	res, err := Normalize(addressRelation(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(res.Tables))
	}
	for _, tbl := range res.Tables {
		if err := VerifyNormalForm(tbl); err != nil {
			t.Error(err)
		}
	}
	ddl := DDL(res.Tables)
	for _, want := range []string{"CREATE TABLE", "PRIMARY KEY", "FOREIGN KEY"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q", want)
		}
	}
}

func TestPublicAPIDiscovery(t *testing.T) {
	rel := addressRelation(t)
	hy := DiscoverFDs(rel, HyFD, 0)
	ta := DiscoverFDs(rel, TANE, 0)
	df := DiscoverFDs(rel, DFD, 0)
	if hy.CountSingle() != 12 || !hy.Equal(ta) || !hy.Equal(df) {
		t.Errorf("HyFD found %d FDs; TANE agreement %v, DFD agreement %v",
			hy.CountSingle(), hy.Equal(ta), hy.Equal(df))
	}
	keys := DiscoverKeys(rel)
	found := false
	for _, k := range keys {
		if k.Equal(NewAttrSet(5, 0, 1)) {
			found = true
		}
	}
	if !found {
		t.Error("{First, Last} missing from discovered keys")
	}
	ExtendFDs(hy, ClosureOptimized)
	// After extension, First,Last must determine everything.
	for _, f := range hy.FDs {
		if f.Lhs.Equal(NewAttrSet(5, 0, 1)) && f.Rhs.Cardinality() != 3 {
			t.Errorf("extended rhs of {First,Last} = %v", f.Rhs)
		}
	}
}

func TestPublicAPICSV(t *testing.T) {
	rel, err := ReadCSV("r", strings.NewReader("a,b\n1,x\n2,x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 || rel.NumAttrs() != 2 {
		t.Errorf("parsed %dx%d", rel.NumRows(), rel.NumAttrs())
	}
}

func TestPublicAPIForeignKeySuggestion(t *testing.T) {
	nation, _ := NewRelation("nation",
		[]string{"nationkey", "n_name"},
		[][]string{{"0", "FRANCE"}, {"1", "GERMANY"}})
	customer, _ := NewRelation("customer",
		[]string{"custkey", "c_name", "nationkey"},
		[][]string{{"10", "Ann", "0"}, {"11", "Bob", "1"}, {"12", "Cleo", "0"}})
	res, err := NormalizeAll([]*Relation{nation, customer}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inds := DiscoverINDs([]*Relation{nation, customer})
	if len(inds) == 0 {
		t.Fatal("no INDs discovered")
	}
	fks := SuggestForeignKeys(res.Tables)
	found := false
	for _, fk := range fks {
		if fk.IND.Dependent.Relation == "customer" &&
			fk.IND.Referenced.Relation == "nation" &&
			fk.IND.Dependent.Attribute == "nationkey" {
			found = true
			if fk.Score < 0.9 {
				t.Errorf("obvious FK scored only %v", fk.Score)
			}
		}
	}
	if !found {
		t.Errorf("customer.nationkey → nation.nationkey not suggested: %+v", fks)
	}
}

func TestPublicAPICompositeForeignKeySuggestion(t *testing.T) {
	// Normalize the original TPC-H relations independently; the
	// composite reference lineitem.(partkey, suppkey) → partsupp can
	// only come from an n-ary inclusion dependency.
	ds := mustGen(t)(GenerateTPCH(0.0001, 1))
	var lineitem, partsupp *Relation
	for _, r := range ds.Original {
		switch r.Name {
		case "lineitem":
			lineitem = r
		case "partsupp":
			partsupp = r
		}
	}
	// Keep both relations whole (the user declines every split) and pick
	// the semantically right key for partsupp — at this tiny scale the
	// random cost/comment columns are accidentally unique and would
	// outrank (partkey, suppkey) in the automatic mode.
	stop := FuncDecider{
		ViolatingFD: func(*Table, []RankedFD) (int, *AttrSet) { return -1, nil },
		PrimaryKey: func(tbl *Table, ranked []RankedKey) int {
			for i, rk := range ranked {
				names := tbl.AttrNames(rk.Key)
				if len(names) == 2 && names[0] == "partkey" && names[1] == "suppkey" {
					return i
				}
			}
			return 0
		},
	}
	res, err := NormalizeAll([]*Relation{lineitem, partsupp}, Options{MaxLhs: 2, Decider: stop})
	if err != nil {
		t.Fatal(err)
	}
	fks := SuggestCompositeForeignKeys(res.Tables)
	found := false
	for _, fk := range fks {
		if fk.ReferencedRel == "partsupp" && len(fk.DependentCols) == 2 &&
			fk.DependentCols[0] == "partkey" && fk.DependentCols[1] == "suppkey" {
			found = true
		}
	}
	if !found {
		t.Errorf("lineitem (partkey, suppkey) → partsupp not suggested: %+v", fks)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	if ds := mustGen(t)(GenerateTPCH(0.0001, 1)); ds.Denormalized.NumAttrs() != 52 {
		t.Error("TPCH generator shape wrong")
	}
	if ds := mustGen(t)(GenerateMusicBrainz(8, 1)); len(ds.Original) != 11 {
		t.Error("MusicBrainz generator shape wrong")
	}
	if ds := GenerateHorse(1); ds.Denormalized.NumAttrs() != 27 {
		t.Error("Horse generator shape wrong")
	}
}
