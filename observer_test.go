package normalize

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"normalize/internal/observe"
)

// TestObserverStageLifecycle runs the quickstart dataset through
// NormalizeContext with a recording observer and asserts the
// instrumentation contract: every pipeline stage fires, every started
// span finishes (ordered start-before-finish), event timestamps are
// monotonic, and the Figure-1 stages appear in pipeline order.
func TestObserverStageLifecycle(t *testing.T) {
	rec := NewRecordingObserver()
	res, err := NormalizeContext(context.Background(), addressRelation(t), Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables")
	}

	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("observer recorded nothing")
	}

	// Timestamps arrive in monotonic (non-decreasing) order.
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("event %d at %v precedes event %d at %v",
				i, events[i].At, i-1, events[i-1].At)
		}
	}

	// Every stage fires, starts and finishes balance, and each span's
	// start precedes its finish.
	open := map[Stage]int{}
	firstStart := map[Stage]int{}
	for i, e := range events {
		switch e.Kind {
		case observe.KindStart:
			if _, seen := firstStart[e.Stage]; !seen {
				firstStart[e.Stage] = i
			}
			open[e.Stage]++
		case observe.KindFinish:
			if open[e.Stage] == 0 {
				t.Fatalf("stage %s finished at event %d without a start", e.Stage, i)
			}
			open[e.Stage]--
			if e.Elapsed < 0 {
				t.Fatalf("stage %s reported negative elapsed %v", e.Stage, e.Elapsed)
			}
		}
	}
	for _, stage := range Stages() {
		if _, ok := firstStart[stage]; !ok {
			t.Errorf("stage %s never fired", stage)
		}
		if open[stage] != 0 {
			t.Errorf("stage %s has %d unfinished span(s) after a successful run", stage, open[stage])
		}
	}

	// The first occurrences follow the pipeline order of Figure 1.
	order := Stages()
	for i := 1; i < len(order); i++ {
		if firstStart[order[i-1]] > firstStart[order[i]] {
			t.Errorf("stage %s first fired after %s, want pipeline order", order[i-1], order[i])
		}
	}

	// Work counters from the sub-packages arrived under their stages.
	totals := rec.Totals()
	byStage := map[Stage]map[string]int64{}
	for _, tot := range totals {
		byStage[tot.Stage] = tot.Counters
	}
	if byStage[StageDiscovery][observe.CounterFDsDiscovered] == 0 {
		t.Error("discovery stage reported no FDs")
	}
	if byStage[StagePrimaryKey][observe.CounterUCCsDiscovered] == 0 {
		t.Error("primary-key stage reported no UCCs")
	}

	var buf bytes.Buffer
	rec.Summary(&buf)
	if strings.Contains(buf.String(), "[interrupted]") {
		t.Errorf("successful run marked interrupted:\n%s", buf.String())
	}
}

// TestNormalizeContextPreCancelled: the public entry point honours an
// already-cancelled context before starting any stage, so no span is
// ever opened. (The interrupted-span rendering of a run cancelled
// mid-stage is asserted by the pipeline tests in internal/core.)
func TestNormalizeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := NewRecordingObserver()
	_, err := NormalizeContext(ctx, addressRelation(t), Options{Observer: rec})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if events := rec.Events(); len(events) != 0 {
		t.Errorf("pre-cancelled run recorded %d events, want none", len(events))
	}
}

// TestContextWrappersCompile pins the compatibility contract: the plain
// functions remain thin wrappers and the Context variants accept a
// deadline.
func TestContextWrappersCompile(t *testing.T) {
	rel := addressRelation(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if _, err := DiscoverFDsContext(ctx, rel, HyFD, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverKeysContext(ctx, rel); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverKeysHybridContext(ctx, rel); err != nil {
		t.Fatal(err)
	}
	fds := DiscoverFDs(rel, HyFD, 0)
	if _, err := ExtendFDsContext(ctx, fds, ClosureOptimized); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverINDsContext(ctx, []*Relation{rel}); err != nil {
		t.Fatal(err)
	}
	if _, err := NormalizeAllContext(ctx, []*Relation{rel}, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize4NFContext(ctx, rel, FourNFOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Verify4NFContext(ctx, rel, FourNFOptions{}); err == nil {
		// The denormalized address relation is not in 4NF; any error is
		// fine as long as the call ran — but nil would be surprising.
		t.Log("address relation verified as 4NF; acceptable but unexpected")
	}
}
